//! Latency synthesis: `tPROG`, `tBERS` and `tR` as pure functions of
//! `(seed, address, P/E cycle)`.
//!
//! The decomposition (all terms in µs, then quantized to the pulse grid):
//!
//! ```text
//! tPROG(chip, plane, blk, layer, str) =
//!     layer_base(chip, layer)              // V-curve + layer-group + chip offsets
//!   + block_speed(blk)                     // shared/own/jitter mixture + outliers
//!   + pattern_penalty(blk, layer, str)     // slow strings pay ~1 pulse
//!   + noise(blk, lwl, pe)                  // i.i.d., grows with wear
//!   - wear_prog_slope * pe/1000
//!
//! tBERS(blk) = ers_base + chip_ers + ers_dev(blk) + noise_e(pe)
//!            + wear_ers_slope * pe/1000
//! ```
//!
//! `ers_dev` correlates (ρ = `ers_pgm_corr`) with the *chip-local* part of
//! the block's program speed — not the index-shared part — which is why
//! sequential assembly barely improves erase latency in the paper while
//! latency-sorted assemblies improve it a lot.

use crate::geometry::Geometry;
use crate::ids::{BlockAddr, PageAddr, PwlLayer, WlAddr};
use crate::sampler::Sampler;
use crate::variation::{StringMask, VariationConfig};

// Domain tags: keep every random quantity in its own hash domain.
const TAG_LAYER_GROUP: u64 = 0x10;
const TAG_CHIP_OFFSET: u64 = 0x11;
const TAG_BLOCK_SHARED: u64 = 0x20;
const TAG_BLOCK_OWN: u64 = 0x21;
const TAG_BLOCK_JITTER: u64 = 0x22;
const TAG_BLOCK_OUTLIER: u64 = 0x23;
const TAG_BLOCK_OUTLIER_MAG: u64 = 0x24;
const TAG_FAMILY_SHARED: u64 = 0x30;
const TAG_FAMILY_OWN: u64 = 0x31;
const TAG_FAMILY_IS_SHARED: u64 = 0x32;
const TAG_PATTERN: u64 = 0x33;
const TAG_PATTERN_FLIP: u64 = 0x34;
const TAG_PATTERN_FLIP_PICK: u64 = 0x35;
const TAG_NOISE: u64 = 0x40;
const TAG_ERS_CHIP: u64 = 0x50;
const TAG_ERS_INDEP: u64 = 0x51;
const TAG_ERS_NOISE: u64 = 0x52;
const TAG_ERS_OUTLIER: u64 = 0x53;
const TAG_ERS_OUTLIER_MAG: u64 = 0x54;
const TAG_READ_NOISE: u64 = 0x60;
const TAG_READ_BLOCK: u64 = 0x61;

/// Deterministic latency synthesizer for one flash array.
///
/// ```
/// use flash_model::{Geometry, LatencyModel, VariationConfig, BlockAddr, ChipId, PlaneId, BlockId, LwlId};
///
/// let model = LatencyModel::new(Geometry::small_test(), VariationConfig::default(), 42);
/// let wl = BlockAddr::new(ChipId(0), PlaneId(0), BlockId(3)).wl(LwlId(0));
/// // Latency is a stable trait: the same query always returns the same value.
/// assert_eq!(model.program_latency_us(wl, 0), model.program_latency_us(wl, 0));
/// ```
#[derive(Debug, Clone)]
pub struct LatencyModel {
    geo: Geometry,
    var: VariationConfig,
    sampler: Sampler,
}

impl LatencyModel {
    /// Builds a model; the same `(geometry, variation, seed)` triple always
    /// produces identical latencies.
    ///
    /// # Panics
    ///
    /// Panics if the variation config fails [`VariationConfig::validate`].
    #[must_use]
    pub fn new(geo: Geometry, var: VariationConfig, seed: u64) -> Self {
        if let Err(e) = var.validate() {
            panic!("invalid variation config: {e}");
        }
        LatencyModel { geo, var, sampler: Sampler::new(seed) }
    }

    /// The geometry this model synthesizes latencies for.
    #[must_use]
    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// The variation parameters.
    #[must_use]
    pub fn variation(&self) -> &VariationConfig {
        &self.var
    }

    fn block_tags(addr: BlockAddr) -> [u64; 3] {
        [u64::from(addr.chip.0), u64::from(addr.plane.0), u64::from(addr.block.0)]
    }

    /// Layer-profile component: V-curve + per-chip layer-group offsets +
    /// per-chip constant offset. Shared by all blocks of a chip.
    #[must_use]
    pub fn layer_base_us(&self, addr: BlockAddr, layer: PwlLayer) -> f64 {
        let v = &self.var;
        let layers = f64::from(self.geo.pwl_layers());
        let x = if layers > 1.0 { 2.0 * f64::from(layer.0) / (layers - 1.0) - 1.0 } else { 0.0 };
        let curve = v.layer_curve_amp_us * x * x - v.layer_curve_amp_us / 3.0;
        let group = u64::from(layer.0 / self.var.layer_group_size);
        let group_off = v.layer_group_sigma_us
            * self.sampler.normal(&[TAG_LAYER_GROUP, u64::from(addr.chip.0), group]);
        let chip_off = v.chip_offset_sigma_us
            * self.sampler.normal(&[TAG_CHIP_OFFSET, u64::from(addr.chip.0)]);
        v.prog_base_us + curve + group_off + chip_off
    }

    /// Latent standard-normal components of a block's speed:
    /// `(shared, own, jitter)`.
    fn block_latents(&self, addr: BlockAddr) -> (f64, f64, f64) {
        let v = &self.var;
        let [c, p, b] = Self::block_tags(addr);
        let bucket = b / u64::from(v.block_corr_len.max(1));
        let shared = self.sampler.normal(&[TAG_BLOCK_SHARED, bucket]);
        let own = self.sampler.normal(&[TAG_BLOCK_OWN, c, p, bucket]);
        let jitter = self.sampler.normal(&[TAG_BLOCK_JITTER, c, p, b]);
        (shared, own, jitter)
    }

    /// The block's program-speed deviation in µs (positive = slow),
    /// including the outlier tail.
    #[must_use]
    pub fn block_speed_us(&self, addr: BlockAddr) -> f64 {
        let v = &self.var;
        let (shared, own, jitter) = self.block_latents(addr);
        let sh = v.block_shared_frac;
        let w = v.block_corr_weight;
        let mix = sh.sqrt() * shared
            + ((1.0 - sh) * w).sqrt() * own
            + ((1.0 - sh) * (1.0 - w)).sqrt() * jitter;
        v.block_sigma_us * mix + self.block_outlier_us(addr)
    }

    fn block_outlier_us(&self, addr: BlockAddr) -> f64 {
        let v = &self.var;
        let tags = Self::block_tags(addr);
        if v.outlier_prob > 0.0
            && self
                .sampler
                .bernoulli(v.outlier_prob, &[TAG_BLOCK_OUTLIER, tags[0], tags[1], tags[2]])
        {
            self.sampler.exponential(
                v.outlier_extra_us,
                &[TAG_BLOCK_OUTLIER_MAG, tags[0], tags[1], tags[2]],
            )
        } else {
            0.0
        }
    }

    /// The chip-local (non-index-shared) standard-normal quality latent used
    /// to correlate erase with program speed.
    fn local_quality(&self, addr: BlockAddr) -> f64 {
        let v = &self.var;
        let (_, own, jitter) = self.block_latents(addr);
        v.block_corr_weight.sqrt() * own + (1.0 - v.block_corr_weight).sqrt() * jitter
    }

    /// Pattern family id of a block (stable trait).
    #[must_use]
    pub fn pattern_family(&self, addr: BlockAddr) -> u32 {
        let v = &self.var;
        let [c, p, b] = Self::block_tags(addr);
        let bucket = b / u64::from(v.pattern_corr_len.max(1));
        let n = v.pattern_families as usize;
        if self.sampler.bernoulli(v.pattern_shared_frac, &[TAG_FAMILY_IS_SHARED, c, p, b]) {
            self.sampler.choice(n, &[TAG_FAMILY_SHARED, bucket]) as u32
        } else {
            self.sampler.choice(n, &[TAG_FAMILY_OWN, c, p, bucket]) as u32
        }
    }

    /// Which strings are fast on one physical word-line layer of a block.
    ///
    /// Exactly `strings / 2` (at least one) strings are fast; which ones is a
    /// stable per-(block, layer) trait derived from the block's pattern
    /// family, occasionally flipped to a block-private pattern.
    #[must_use]
    pub fn fast_strings(&self, addr: BlockAddr, layer: PwlLayer) -> StringMask {
        let v = &self.var;
        let [c, p, b] = Self::block_tags(addr);
        let l = u64::from(layer.0);
        let strings = u32::from(self.geo.strings());
        let n_fast = (strings / 2).max(1);
        let combos = binomial(strings, n_fast);
        let idx = if v.pattern_flip_prob > 0.0
            && self.sampler.bernoulli(v.pattern_flip_prob, &[TAG_PATTERN_FLIP, c, p, b, l])
        {
            self.sampler.choice(combos as usize, &[TAG_PATTERN_FLIP_PICK, c, p, b, l]) as u32
        } else {
            let fam = u64::from(self.pattern_family(addr));
            self.sampler.choice(combos as usize, &[TAG_PATTERN, fam, l]) as u32
        };
        k_subset_mask(strings, n_fast, idx)
    }

    fn quantize(x: f64, q: f64) -> f64 {
        (x / q).round() * q
    }

    fn wear_noise_factor(&self, pe: u32) -> f64 {
        1.0 + self.var.wear_noise_growth_per_kpe * f64::from(pe) / 1000.0
    }

    /// Program latency of one logical word-line at the given P/E cycle, µs.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range for the geometry.
    #[must_use]
    pub fn program_latency_us(&self, wl: WlAddr, pe: u32) -> f64 {
        self.program_latency_from_prefix_us(self.program_prefix_us(wl), wl, pe)
    }

    /// The wear-independent part of [`Self::program_latency_us`]: layer
    /// base plus block speed plus string-pattern penalty, summed in the
    /// same left-to-right order as the full synthesis so caching the
    /// prefix and finishing with [`Self::program_latency_from_prefix_us`]
    /// is bit-identical to the one-shot call. Constant per `(block, lwl)`.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range for the geometry.
    #[must_use]
    pub fn program_prefix_us(&self, wl: WlAddr) -> f64 {
        assert!(self.geo.contains_block(wl.block), "address {wl} out of range");
        let v = &self.var;
        let layer = self.geo.layer_of(wl.lwl);
        let string = self.geo.string_of(wl.lwl);
        let base = self.layer_base_us(wl.block, layer);
        let speed = self.block_speed_us(wl.block);
        let pattern = if self.fast_strings(wl.block, layer).contains(string.0) {
            0.0
        } else {
            v.pattern_penalty_us
        };
        base + speed + pattern
    }

    /// Finishes a program-latency synthesis from a cached
    /// [`Self::program_prefix_us`] value: adds the per-(lwl, P/E) noise draw
    /// and the wear trend, then quantizes. `program_latency_from_prefix_us(
    /// program_prefix_us(wl), wl, pe)` equals `program_latency_us(wl, pe)`
    /// to the bit.
    #[must_use]
    pub fn program_latency_from_prefix_us(&self, prefix: f64, wl: WlAddr, pe: u32) -> f64 {
        let v = &self.var;
        let [c, p, b] = Self::block_tags(wl.block);
        let noise = v.noise_sigma_us
            * self.wear_noise_factor(pe)
            * self.sampler.normal(&[TAG_NOISE, c, p, b, u64::from(wl.lwl.0), u64::from(pe)]);
        let wear = -v.wear_prog_slope_us_per_kpe * f64::from(pe) / 1000.0;
        Self::quantize(prefix + noise + wear, v.pulse_us).max(v.pulse_us)
    }

    /// Erase latency of one block at the given P/E cycle, µs.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range for the geometry.
    #[must_use]
    pub fn erase_latency_us(&self, addr: BlockAddr, pe: u32) -> f64 {
        self.erase_latency_from_prefix_us(self.erase_prefix_us(addr), addr, pe)
    }

    /// The wear-independent part of [`Self::erase_latency_us`]: base + chip
    /// offset + block deviation + outlier tail, in the full synthesis's
    /// left-to-right order so the prefix can be cached per block and
    /// finished with [`Self::erase_latency_from_prefix_us`] bit-identically.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range for the geometry.
    #[must_use]
    pub fn erase_prefix_us(&self, addr: BlockAddr) -> f64 {
        assert!(self.geo.contains_block(addr), "address {addr} out of range");
        let v = &self.var;
        let [c, p, b] = Self::block_tags(addr);
        let chip_off = v.ers_chip_sigma_us * self.sampler.normal(&[TAG_ERS_CHIP, c]);
        let rho = v.ers_pgm_corr;
        let dev = v.ers_block_sigma_us
            * (rho * self.local_quality(addr)
                + (1.0 - rho * rho).sqrt() * self.sampler.normal(&[TAG_ERS_INDEP, c, p, b]));
        let outlier = if v.ers_outlier_prob > 0.0
            && self.sampler.bernoulli(v.ers_outlier_prob, &[TAG_ERS_OUTLIER, c, p, b])
        {
            self.sampler.exponential(v.ers_outlier_extra_us, &[TAG_ERS_OUTLIER_MAG, c, p, b])
        } else {
            0.0
        };
        v.ers_base_us + chip_off + dev + outlier
    }

    /// Finishes an erase-latency synthesis from a cached
    /// [`Self::erase_prefix_us`] value; bit-identical to
    /// [`Self::erase_latency_us`].
    #[must_use]
    pub fn erase_latency_from_prefix_us(&self, prefix: f64, addr: BlockAddr, pe: u32) -> f64 {
        let v = &self.var;
        let [c, p, b] = Self::block_tags(addr);
        let noise = v.ers_noise_sigma_us
            * self.wear_noise_factor(pe)
            * self.sampler.normal(&[TAG_ERS_NOISE, c, p, b, u64::from(pe)]);
        let wear = v.wear_ers_slope_us_per_kpe * f64::from(pe) / 1000.0;
        Self::quantize(prefix + noise + wear, v.ers_quantum_us).max(v.ers_quantum_us)
    }

    /// Read latency of one page at the given P/E cycle, µs.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range for the geometry.
    #[must_use]
    pub fn read_latency_us(&self, page: PageAddr, pe: u32) -> f64 {
        assert!(self.geo.contains_block(page.wl.block), "address out of range");
        let v = &self.var;
        let [c, p, b] = Self::block_tags(page.wl.block);
        let step = v.read_page_step_us * f64::from(page.page.index());
        // Per-block tR deviation, correlated with program speed through the
        // same latent quality the erase path uses. Gated so the default
        // (sigma 0) adds a literal `+ 0.0` and stays bit-identical.
        let block_dev = if v.read_block_sigma_us > 0.0 {
            let rho = v.read_pgm_corr;
            v.read_block_sigma_us
                * (rho * self.local_quality(page.wl.block)
                    + (1.0 - rho * rho).sqrt() * self.sampler.normal(&[TAG_READ_BLOCK, c, p, b]))
        } else {
            0.0
        };
        let noise = v.read_noise_sigma_us
            * self.wear_noise_factor(pe)
            * self.sampler.normal(&[
                TAG_READ_NOISE,
                c,
                p,
                b,
                u64::from(page.wl.lwl.0),
                u64::from(page.page.index()),
                u64::from(pe),
            ]);
        (v.read_base_us + step + block_dev + noise).max(1.0)
    }

    /// Sum of per-LWL program latencies over a whole block — the paper's
    /// "BLK PGM LTN" metric used to sort blocks.
    #[must_use]
    pub fn block_program_sum_us(&self, addr: BlockAddr, pe: u32) -> f64 {
        self.geo.lwls().map(|lwl| self.program_latency_us(addr.wl(lwl), pe)).sum()
    }
}

/// Memoized static prefixes of program/erase synthesis.
///
/// Profiling a saturated replay shows most of the per-op cost is the 5–7
/// hash-sampler draws behind [`LatencyModel::program_latency_us`]; all but
/// the noise draw are constant per `(block, lwl)` (program) or per block
/// (erase). This cache stores those prefixes in dense tables (NaN =
/// unfilled) and finishes each query with the `*_from_prefix_us` methods,
/// so results stay bit-identical to the uncached model while steady-state
/// queries pay one draw instead of many.
///
/// Read latency is already a single draw and is not cached.
#[derive(Debug, Clone)]
pub struct LatencyCache {
    /// `prog_prefix[block_index * lwls_per_block + lwl]`; NaN = unfilled.
    prog_prefix: Vec<f64>,
    /// `ers_prefix[block_index]`; NaN = unfilled.
    ers_prefix: Vec<f64>,
    lwls_per_block: usize,
}

impl LatencyCache {
    /// An empty cache sized for `geo`'s dense block/word-line index space.
    #[must_use]
    pub fn new(geo: &Geometry) -> Self {
        let blocks = geo.total_blocks() as usize;
        let lwls_per_block = geo.lwls_per_block() as usize;
        LatencyCache {
            prog_prefix: vec![f64::NAN; blocks * lwls_per_block],
            ers_prefix: vec![f64::NAN; blocks],
            lwls_per_block,
        }
    }

    /// Cached-prefix equivalent of [`LatencyModel::program_latency_us`];
    /// bit-identical to it by construction.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range for the model's geometry.
    pub fn program_latency_us(&mut self, model: &LatencyModel, wl: WlAddr, pe: u32) -> f64 {
        let idx = model.geometry().block_index(wl.block) * self.lwls_per_block + wl.lwl.0 as usize;
        let mut prefix = self.prog_prefix[idx];
        if prefix.is_nan() {
            prefix = model.program_prefix_us(wl);
            self.prog_prefix[idx] = prefix;
        }
        model.program_latency_from_prefix_us(prefix, wl, pe)
    }

    /// Cached-prefix equivalent of [`LatencyModel::erase_latency_us`];
    /// bit-identical to it by construction.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range for the model's geometry.
    pub fn erase_latency_us(&mut self, model: &LatencyModel, addr: BlockAddr, pe: u32) -> f64 {
        let idx = model.geometry().block_index(addr);
        let mut prefix = self.ers_prefix[idx];
        if prefix.is_nan() {
            prefix = model.erase_prefix_us(addr);
            self.ers_prefix[idx] = prefix;
        }
        model.erase_latency_from_prefix_us(prefix, addr, pe)
    }
}

/// Binomial coefficient C(n, k) for the small values used here.
fn binomial(n: u32, k: u32) -> u32 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u64 = 1;
    for i in 0..u64::from(k) {
        acc = acc * (u64::from(n) - i) / (i + 1);
    }
    acc as u32
}

/// Unranks the `idx`-th k-subset of `{0..n}` (combinatorial number system)
/// into a [`StringMask`]; used to map a pattern id to a fast-string set.
fn k_subset_mask(n: u32, k: u32, idx: u32) -> StringMask {
    debug_assert!(idx < binomial(n, k));
    let mut mask = 0u8;
    let mut idx = idx;
    let mut k = k;
    for bit in 0..n {
        if k == 0 {
            break;
        }
        // Subsets starting with `bit`: C(n - bit - 1, k - 1).
        let with_bit = binomial(n - bit - 1, k - 1);
        if idx < with_bit {
            mask |= 1 << bit;
            k -= 1;
        } else {
            idx -= with_bit;
        }
    }
    StringMask(mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{BlockId, CellType, ChipId, LwlId, PageType, PlaneId, StringId};

    fn model() -> LatencyModel {
        LatencyModel::new(Geometry::small_test(), VariationConfig::default(), 99)
    }

    fn blk(c: u16, b: u32) -> BlockAddr {
        BlockAddr::new(ChipId(c), PlaneId(0), BlockId(b))
    }

    #[test]
    fn binomial_small_values() {
        assert_eq!(binomial(4, 2), 6);
        assert_eq!(binomial(4, 0), 1);
        assert_eq!(binomial(4, 4), 1);
        assert_eq!(binomial(6, 3), 20);
        assert_eq!(binomial(3, 5), 0);
    }

    #[test]
    fn k_subsets_are_distinct_and_sized() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..6 {
            let m = k_subset_mask(4, 2, i);
            assert_eq!(m.count(), 2);
            assert!(seen.insert(m.0));
        }
    }

    #[test]
    fn latencies_are_deterministic() {
        let m1 = model();
        let m2 = model();
        let wl = blk(1, 5).wl(LwlId(3));
        assert_eq!(m1.program_latency_us(wl, 0), m2.program_latency_us(wl, 0));
        assert_eq!(m1.erase_latency_us(blk(2, 9), 100), m2.erase_latency_us(blk(2, 9), 100));
    }

    #[test]
    fn program_latency_is_on_pulse_grid() {
        let m = model();
        let q = m.variation().pulse_us;
        for b in 0..8 {
            for lwl in m.geometry().lwls() {
                let t = m.program_latency_us(blk(0, b).wl(lwl), 0);
                let ratio = t / q;
                assert!((ratio - ratio.round()).abs() < 1e-9, "{t} not on grid {q}");
            }
        }
    }

    #[test]
    fn erase_latency_is_on_erase_grid() {
        let m = model();
        let q = m.variation().ers_quantum_us;
        for b in 0..16 {
            let t = m.erase_latency_us(blk(1, b), 0);
            let ratio = t / q;
            assert!((ratio - ratio.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn latencies_are_in_plausible_ranges() {
        let m = model();
        for b in 0..16 {
            let e = m.erase_latency_us(blk(0, b), 0);
            assert!((3000.0..6000.0).contains(&e), "tBERS {e}");
            for lwl in m.geometry().lwls() {
                let t = m.program_latency_us(blk(0, b).wl(lwl), 0);
                assert!((1400.0..2400.0).contains(&t), "tPROG {t}");
            }
        }
    }

    #[test]
    fn fast_strings_mark_half_the_strings() {
        let m = model();
        for b in 0..16 {
            for l in 0..m.geometry().pwl_layers() {
                assert_eq!(m.fast_strings(blk(0, b), PwlLayer(l)).count(), 2);
            }
        }
    }

    #[test]
    fn fast_strings_are_actually_faster_on_average() {
        let m = model();
        let geo = m.geometry().clone();
        let mut fast_sum = 0.0;
        let mut fast_n = 0u32;
        let mut slow_sum = 0.0;
        let mut slow_n = 0u32;
        for b in 0..32 {
            let a = blk(0, b);
            for l in 0..geo.pwl_layers() {
                let mask = m.fast_strings(a, PwlLayer(l));
                for s in 0..geo.strings() {
                    let t = m.program_latency_us(a.wl(geo.lwl_of(PwlLayer(l), StringId(s))), 0);
                    if mask.contains(s) {
                        fast_sum += t;
                        fast_n += 1;
                    } else {
                        slow_sum += t;
                        slow_n += 1;
                    }
                }
            }
        }
        let fast_avg = fast_sum / f64::from(fast_n);
        let slow_avg = slow_sum / f64::from(slow_n);
        assert!(
            slow_avg > fast_avg + 0.5 * m.variation().pattern_penalty_us,
            "slow {slow_avg} vs fast {fast_avg}"
        );
    }

    #[test]
    fn wear_shifts_program_down_and_erase_up() {
        let m = model();
        let a = blk(0, 3);
        let sum0 = m.block_program_sum_us(a, 0);
        let sum3k = m.block_program_sum_us(a, 3000);
        assert!(sum3k < sum0, "program should speed up with wear: {sum0} -> {sum3k}");
        // Erase trend: average over blocks to beat noise.
        let e0: f64 = (0..32).map(|b| m.erase_latency_us(blk(0, b), 0)).sum();
        let e3k: f64 = (0..32).map(|b| m.erase_latency_us(blk(0, b), 3000)).sum();
        assert!(e3k > e0, "erase should slow down with wear");
    }

    #[test]
    fn uniform_config_means_zero_extra_variation() {
        let m = LatencyModel::new(Geometry::small_test(), VariationConfig::uniform(), 1);
        let t0 = m.program_latency_us(blk(0, 0).wl(LwlId(0)), 0);
        for c in 0..4 {
            for b in 0..8 {
                assert_eq!(m.program_latency_us(blk(c, b).wl(LwlId(0)), 0), t0);
            }
        }
    }

    #[test]
    fn read_latency_orders_by_page_significance() {
        let m = LatencyModel::new(Geometry::small_test(), VariationConfig::uniform(), 1);
        let wl = blk(0, 0).wl(LwlId(0));
        let lsb = m.read_latency_us(wl.page(PageType::Lsb), 0);
        let csb = m.read_latency_us(wl.page(PageType::Csb), 0);
        let msb = m.read_latency_us(wl.page(PageType::Msb), 0);
        assert!(lsb < csb && csb < msb);
    }

    #[test]
    fn read_block_sigma_zero_leaves_reads_unchanged() {
        let base = model();
        let with_corr = LatencyModel::new(
            Geometry::small_test(),
            VariationConfig { read_pgm_corr: 0.8, ..VariationConfig::default() },
            99,
        );
        let page = blk(1, 5).wl(LwlId(3)).page(PageType::Csb);
        // sigma stays 0, so the corr knob alone must not move a single bit.
        assert_eq!(
            base.read_latency_us(page, 7).to_bits(),
            with_corr.read_latency_us(page, 7).to_bits()
        );
    }

    #[test]
    fn read_block_sigma_spreads_blocks() {
        let cfg = VariationConfig {
            read_block_sigma_us: 6.0,
            read_pgm_corr: 0.8,
            read_noise_sigma_us: 0.0,
            ..VariationConfig::default()
        };
        let m = LatencyModel::new(Geometry::small_test(), cfg, 99);
        let a = m.read_latency_us(blk(0, 0).wl(LwlId(0)).page(PageType::Lsb), 0);
        let b = m.read_latency_us(blk(2, 5).wl(LwlId(0)).page(PageType::Lsb), 0);
        assert_ne!(a, b, "per-block tR deviation should differ across blocks");
    }

    #[test]
    fn block_program_sum_matches_manual_sum() {
        let m = model();
        let a = blk(2, 7);
        let manual: f64 = m.geometry().lwls().map(|l| m.program_latency_us(a.wl(l), 0)).sum();
        assert_eq!(m.block_program_sum_us(a, 0), manual);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn program_out_of_range_panics() {
        let m = model();
        let bad = BlockAddr::new(ChipId(99), PlaneId(0), BlockId(0));
        let _ = m.program_latency_us(bad.wl(LwlId(0)), 0);
    }

    #[test]
    #[should_panic(expected = "invalid variation config")]
    fn invalid_config_rejected() {
        let bad = VariationConfig { outlier_prob: 2.0, ..VariationConfig::default() };
        let _ = LatencyModel::new(Geometry::small_test(), bad, 0);
    }

    #[test]
    fn pattern_family_is_stable_and_in_range() {
        let m = model();
        for b in 0..32 {
            let f = m.pattern_family(blk(1, b));
            assert!(f < m.variation().pattern_families);
            assert_eq!(f, m.pattern_family(blk(1, b)));
        }
    }

    #[test]
    fn cached_program_latency_is_bit_identical() {
        let m = model();
        let mut cache = LatencyCache::new(m.geometry());
        let geo = m.geometry().clone();
        for c in 0..geo.chips() {
            for b in 0..8 {
                for lwl in geo.lwls() {
                    let wl = blk(c, b).wl(lwl);
                    for pe in [0u32, 1, 7, 100, 3000] {
                        // Query twice: first fills the prefix, second hits it.
                        assert_eq!(
                            cache.program_latency_us(&m, wl, pe).to_bits(),
                            m.program_latency_us(wl, pe).to_bits(),
                            "{wl} pe={pe}"
                        );
                        assert_eq!(
                            cache.program_latency_us(&m, wl, pe).to_bits(),
                            m.program_latency_us(wl, pe).to_bits()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cached_erase_latency_is_bit_identical() {
        let m = model();
        let mut cache = LatencyCache::new(m.geometry());
        for c in 0..m.geometry().chips() {
            for b in 0..16 {
                for pe in [0u32, 1, 42, 2000] {
                    assert_eq!(
                        cache.erase_latency_us(&m, blk(c, b), pe).to_bits(),
                        m.erase_latency_us(blk(c, b), pe).to_bits()
                    );
                    assert_eq!(
                        cache.erase_latency_us(&m, blk(c, b), pe).to_bits(),
                        m.erase_latency_us(blk(c, b), pe).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn prefix_split_reassembles_exactly() {
        let m = model();
        let wl = blk(1, 5).wl(LwlId(3));
        let prefix = m.program_prefix_us(wl);
        assert_eq!(
            m.program_latency_from_prefix_us(prefix, wl, 250).to_bits(),
            m.program_latency_us(wl, 250).to_bits()
        );
        let a = blk(2, 9);
        let eprefix = m.erase_prefix_us(a);
        assert_eq!(
            m.erase_latency_from_prefix_us(eprefix, a, 250).to_bits(),
            m.erase_latency_us(a, 250).to_bits()
        );
    }

    #[test]
    fn mlc_cell_geometry_also_works() {
        let geo = Geometry::new(2, 1, 8, 4, 4, CellType::Mlc);
        let m = LatencyModel::new(geo, VariationConfig::default(), 3);
        let t = m.program_latency_us(blk(0, 0).wl(LwlId(0)), 0);
        assert!(t > 0.0);
    }
}
