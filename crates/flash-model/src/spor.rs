//! Sudden-power-off-recovery (SPOR) media structures: per-page out-of-band
//! (OOB) metadata and capacitor-backed per-superblock seal records.
//!
//! Real SSDs reserve a few spare bytes per flash page that are programmed
//! *atomically* with the payload; the FTL uses them after a crash to rebuild
//! its RAM-resident mapping. This crate stores that spare area alongside the
//! page payload tags, subject to the same readability rules: a page whose
//! word-line never finished programming (a *torn* super word-line) exposes
//! neither payload nor OOB.

use crate::ids::BlockAddr;

/// Out-of-band metadata programmed atomically with one page payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageOob {
    /// Logical page number stored in this physical page, or
    /// [`PageOob::FILLER_LPN`] for padding written to close a word-line.
    pub lpn: u64,
    /// Monotonic write sequence number; a recovery scan resolves duplicate
    /// LPNs by keeping the highest sequence number (latest-wins).
    pub seq: u64,
    /// Identifier of the superblock this block belonged to when programmed.
    pub sb_id: u64,
    /// Index of this block within the superblock's member list.
    pub member_slot: u16,
}

impl PageOob {
    /// LPN marker for filler/padding pages that carry no host data.
    pub const FILLER_LPN: u64 = u64::MAX;

    /// LPN marker for RAIN parity pages. The payload of a parity page is the
    /// XOR of its super-word-line siblings' payload tags, which can collide
    /// with any real LPN — the OOB marker is what keeps recovery scans from
    /// aliasing parity into the L2P table.
    pub const PARITY_LPN: u64 = u64::MAX - 1;

    /// Whether this page is padding rather than host data.
    #[must_use]
    pub fn is_filler(&self) -> bool {
        self.lpn == Self::FILLER_LPN
    }

    /// Whether this page holds RAIN parity rather than host data.
    #[must_use]
    pub fn is_parity(&self) -> bool {
        self.lpn == Self::PARITY_LPN
    }

    /// Whether this page may appear in the L2P table (host data, as opposed
    /// to filler padding or parity).
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        !self.is_filler() && !self.is_parity()
    }
}

impl Default for PageOob {
    fn default() -> Self {
        PageOob { lpn: Self::FILLER_LPN, seq: 0, sb_id: u64::MAX, member_slot: u16::MAX }
    }
}

/// Gathered characterization stats of one member block, persisted when its
/// superblock seals (the paper's QSTR-MED "gathering" output: the PGM-latency
/// sum plus the 1-bit-per-string eigen sequence).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSummaryRecord {
    /// The characterized block.
    pub addr: BlockAddr,
    /// Sum of observed word-line program latencies, µs.
    pub pgm_sum_us: f64,
    /// Eigen bit sequence (one bit per string of each physical word-line
    /// layer), stored expanded for the simulation.
    pub eigen_bits: Vec<bool>,
}

/// A per-superblock summary record written to the capacitor-backed metadata
/// region when a superblock seals. Survives power loss; lets QSTR-MED resume
/// assembly after recovery without re-characterizing any block.
#[derive(Debug, Clone, PartialEq)]
pub struct SealRecord {
    /// Identifier of the sealed superblock.
    pub sb_id: u64,
    /// Member blocks in slot order.
    pub members: Vec<BlockAddr>,
    /// Gathered per-member stats (members that failed mid-life and were
    /// dropped have no entry).
    pub summaries: Vec<BlockSummaryRecord>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_oob_is_filler() {
        let oob = PageOob::default();
        assert!(oob.is_filler());
        assert_eq!(oob.lpn, PageOob::FILLER_LPN);
    }

    #[test]
    fn host_oob_is_not_filler() {
        let oob = PageOob { lpn: 42, seq: 7, sb_id: 3, member_slot: 1 };
        assert!(!oob.is_filler());
        assert!(!oob.is_parity());
        assert!(oob.is_mapped());
    }

    #[test]
    fn parity_oob_is_neither_filler_nor_mapped() {
        let oob = PageOob { lpn: PageOob::PARITY_LPN, seq: 0, sb_id: 3, member_slot: 2 };
        assert!(oob.is_parity());
        assert!(!oob.is_filler());
        assert!(!oob.is_mapped());
        assert!(!PageOob::default().is_mapped());
    }
}
