//! Bit-packed eigen sequences and their XOR/popcount distance (§V-B).
//!
//! An eigen sequence carries one bit per logical word-line: 0 if the
//! word-line's string is among the fastest half on its physical word-line
//! layer, 1 otherwise. Similarity between two blocks is the Hamming distance
//! between their sequences — a single XOR plus popcount per machine word,
//! which is what makes QSTR-MED cheap enough for a flash controller.

use std::fmt;

/// A bit-packed sequence of fast/slow markers, one per logical word-line.
///
/// ```
/// use pvcheck::EigenSequence;
///
/// let a = EigenSequence::from_bits([true, false, false, true]);
/// let b = EigenSequence::from_bits([false, false, true, true]);
/// assert_eq!(a.to_string(), "1001");
/// assert_eq!(a.distance(&b), 2); // one XOR + popcount
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct EigenSequence {
    words: Vec<u64>,
    len: usize,
}

impl EigenSequence {
    /// An all-zero (all-fast) sequence of the given length.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        EigenSequence { words: vec![0; len.div_ceil(64)], len }
    }

    /// Builds a sequence from booleans (`true` = slow = bit 1).
    #[must_use]
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut seq = EigenSequence::zeros(0);
        for b in bits {
            seq.push(b);
        }
        seq
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    #[must_use]
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        self.words[idx / 64] & (1 << (idx % 64)) != 0
    }

    /// Number of slow (1) bits.
    #[must_use]
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Hamming distance to another sequence: the paper's similarity
    /// distance (number of 1 bits after XOR).
    ///
    /// # Panics
    ///
    /// Panics if the sequences have different lengths.
    #[must_use]
    pub fn distance(&self, other: &EigenSequence) -> u32 {
        assert_eq!(self.len, other.len, "eigen sequences must have equal length");
        self.words.iter().zip(&other.words).map(|(a, b)| (a ^ b).count_ones()).sum()
    }

    /// Memory footprint of the packed bits, in bytes (Equation 2's
    /// `S_Eigen`).
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        self.len.div_ceil(8)
    }
}

impl fmt::Display for EigenSequence {
    /// Formats like the paper's Figure 9: groups of four bits.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            if i > 0 && i % 4 == 0 {
                f.write_str(" ")?;
            }
            f.write_str(if self.get(i) { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for EigenSequence {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        EigenSequence::from_bits(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let bits = [true, false, false, true, true, false];
        let seq = EigenSequence::from_bits(bits);
        assert_eq!(seq.len(), 6);
        for (i, b) in bits.iter().enumerate() {
            assert_eq!(seq.get(i), *b);
        }
    }

    #[test]
    fn crosses_word_boundary() {
        let bits: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let seq = EigenSequence::from_bits(bits.clone());
        assert_eq!(seq.len(), 130);
        for (i, b) in bits.iter().enumerate() {
            assert_eq!(seq.get(i), *b, "bit {i}");
        }
    }

    #[test]
    fn distance_counts_differing_bits() {
        let a = EigenSequence::from_bits([true, false, true, false]);
        let b = EigenSequence::from_bits([true, true, false, false]);
        assert_eq!(a.distance(&b), 2);
        assert_eq!(a.distance(&a), 0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = EigenSequence::from_bits((0..100).map(|i| i % 2 == 0));
        let b = EigenSequence::from_bits((0..100).map(|i| i % 5 == 0));
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn distance_rejects_length_mismatch() {
        let a = EigenSequence::zeros(3);
        let b = EigenSequence::zeros(4);
        let _ = a.distance(&b);
    }

    #[test]
    fn count_ones_matches() {
        let seq = EigenSequence::from_bits((0..70).map(|i| i < 10));
        assert_eq!(seq.count_ones(), 10);
    }

    #[test]
    fn display_groups_by_four() {
        let seq = EigenSequence::from_bits([true, false, false, true, false, false, true, true]);
        assert_eq!(seq.to_string(), "1001 0011");
    }

    #[test]
    fn footprint_matches_paper_figures() {
        // 384 LWLs -> 48 bytes of eigen bits (plus a 4-byte latency sum = 52 B).
        assert_eq!(EigenSequence::zeros(384).footprint_bytes(), 48);
    }

    #[test]
    fn collect_from_iterator() {
        let seq: EigenSequence = (0..8).map(|i| i % 2 == 1).collect();
        assert_eq!(seq.to_string(), "0101 0101");
    }
}
