//! Characterization data: per-block latency profiles and pools of them.

use crate::eigen::EigenSequence;
use crate::error::PvError;
use crate::rank;
use crate::Result;
use flash_model::BlockAddr;
use std::collections::HashMap;

/// Full characterization of one block at one P/E point: the per-word-line
/// program latencies and the block erase latency.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockProfile {
    addr: BlockAddr,
    pe: u32,
    tprog_us: Vec<f64>,
    tbers_us: f64,
    pgm_sum_us: f64,
}

impl BlockProfile {
    /// Builds a profile; the program-latency sum (the paper's *BLK PGM LTN*)
    /// is computed once here.
    ///
    /// # Panics
    ///
    /// Panics if `tprog_us` is empty.
    #[must_use]
    pub fn new(addr: BlockAddr, pe: u32, tprog_us: Vec<f64>, tbers_us: f64) -> Self {
        assert!(!tprog_us.is_empty(), "a block profile needs at least one word-line");
        let pgm_sum_us = tprog_us.iter().sum();
        BlockProfile { addr, pe, tprog_us, tbers_us, pgm_sum_us }
    }

    /// Physical address of the block.
    #[must_use]
    pub fn addr(&self) -> BlockAddr {
        self.addr
    }

    /// P/E cycle at which the profile was collected.
    #[must_use]
    pub fn pe(&self) -> u32 {
        self.pe
    }

    /// Program latency of each logical word-line, layer-major, µs.
    #[must_use]
    pub fn tprog_us(&self) -> &[f64] {
        &self.tprog_us
    }

    /// Block erase latency, µs.
    #[must_use]
    pub fn tbers_us(&self) -> f64 {
        self.tbers_us
    }

    /// Sum of all word-line program latencies (*BLK PGM LTN*), µs.
    #[must_use]
    pub fn pgm_sum_us(&self) -> f64 {
        self.pgm_sum_us
    }

    /// Number of logical word-lines in the profile.
    #[must_use]
    pub fn wl_count(&self) -> usize {
        self.tprog_us.len()
    }

    /// The compact summary QSTR-MED keeps per block: program-latency sum
    /// plus the STR-median eigen sequence.
    #[must_use]
    pub fn summary(&self, strings: u16) -> BlockSummary {
        BlockSummary {
            addr: self.addr,
            pgm_sum_us: self.pgm_sum_us,
            eigen: rank::str_median_eigen(&self.tprog_us, strings),
        }
    }
}

/// The per-block metadata QSTR-MED maintains at runtime (§V-B): one scalar
/// and one bit per word-line — 52 bytes for the paper's 384-WL blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSummary {
    /// Physical address of the block.
    pub addr: BlockAddr,
    /// Sum of word-line program latencies, µs.
    pub pgm_sum_us: f64,
    /// STR-median eigen sequence (bit per logical word-line).
    pub eigen: EigenSequence,
}

/// Profiles of many blocks organized into pools: assembling a superblock
/// means picking exactly one block from each pool.
///
/// In the paper's platform a pool is one plane's worth of blocks on one
/// chip; any partition works as long as members of one superblock must come
/// from distinct pools.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlockPool {
    strings: u16,
    pools: Vec<Vec<BlockProfile>>,
    index: HashMap<BlockAddr, (usize, usize)>,
}

impl BlockPool {
    /// Creates an empty pool set.
    ///
    /// `strings` is needed to derive string-oriented rankings from profiles.
    #[must_use]
    pub fn new(pool_count: usize, strings: u16) -> Self {
        BlockPool { strings, pools: vec![Vec::new(); pool_count], index: HashMap::new() }
    }

    /// Number of strings per block.
    #[must_use]
    pub fn strings(&self) -> u16 {
        self.strings
    }

    /// Number of pools.
    #[must_use]
    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }

    /// Blocks of one pool.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is out of range.
    #[must_use]
    pub fn pool(&self, pool: usize) -> &[BlockProfile] {
        &self.pools[pool]
    }

    /// Size of the smallest pool — the number of whole superblocks that can
    /// be assembled.
    #[must_use]
    pub fn min_pool_len(&self) -> usize {
        self.pools.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Adds a profile to a pool.
    ///
    /// # Errors
    ///
    /// Returns [`PvError::PoolOutOfRange`] if the pool index does not exist
    /// and [`PvError::MismatchedWlCount`] if the profile's word-line count
    /// differs from blocks already present.
    pub fn push(&mut self, pool: usize, profile: BlockProfile) -> Result<()> {
        if pool >= self.pools.len() {
            return Err(PvError::PoolOutOfRange { pool, pools: self.pools.len() });
        }
        if let Some(first) = self.pools.iter().flatten().next() {
            if first.wl_count() != profile.wl_count() {
                return Err(PvError::MismatchedWlCount {
                    expected: first.wl_count(),
                    got: profile.wl_count(),
                });
            }
        }
        self.index.insert(profile.addr(), (pool, self.pools[pool].len()));
        self.pools[pool].push(profile);
        Ok(())
    }

    /// Profile of a block by address.
    #[must_use]
    pub fn profile(&self, addr: BlockAddr) -> Option<&BlockProfile> {
        self.index.get(&addr).map(|&(p, i)| &self.pools[p][i])
    }

    /// Pool a block belongs to.
    #[must_use]
    pub fn pool_of(&self, addr: BlockAddr) -> Option<usize> {
        self.index.get(&addr).map(|&(p, _)| p)
    }

    /// Word-lines per block, or 0 if the pool set is empty.
    #[must_use]
    pub fn wl_count(&self) -> usize {
        self.pools.iter().flatten().next().map_or(0, BlockProfile::wl_count)
    }

    /// Iterator over every profile.
    pub fn iter(&self) -> impl Iterator<Item = &BlockProfile> {
        self.pools.iter().flatten()
    }

    /// Total number of profiles across pools.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pools.iter().map(Vec::len).sum()
    }

    /// Whether no profiles have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_model::{BlockId, ChipId, PlaneId};

    fn addr(c: u16, b: u32) -> BlockAddr {
        BlockAddr::new(ChipId(c), PlaneId(0), BlockId(b))
    }

    fn profile(c: u16, b: u32, base: f64) -> BlockProfile {
        BlockProfile::new(addr(c, b), 0, vec![base, base + 1.0, base + 2.0, base + 3.0], 3000.0)
    }

    #[test]
    fn pgm_sum_is_cached_sum() {
        let p = profile(0, 0, 100.0);
        assert_eq!(p.pgm_sum_us(), 406.0);
        assert_eq!(p.wl_count(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one word-line")]
    fn empty_profile_rejected() {
        let _ = BlockProfile::new(addr(0, 0), 0, vec![], 1.0);
    }

    #[test]
    fn pool_push_and_lookup() {
        let mut pool = BlockPool::new(2, 4);
        pool.push(0, profile(0, 5, 10.0)).unwrap();
        pool.push(1, profile(1, 7, 20.0)).unwrap();
        assert_eq!(pool.pool_count(), 2);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.min_pool_len(), 1);
        assert_eq!(pool.profile(addr(1, 7)).unwrap().pgm_sum_us(), 86.0);
        assert_eq!(pool.pool_of(addr(0, 5)), Some(0));
        assert_eq!(pool.profile(addr(3, 3)), None);
    }

    #[test]
    fn pool_rejects_bad_index() {
        let mut pool = BlockPool::new(1, 4);
        let err = pool.push(3, profile(0, 0, 1.0)).unwrap_err();
        assert_eq!(err, PvError::PoolOutOfRange { pool: 3, pools: 1 });
    }

    #[test]
    fn pool_rejects_mismatched_wl_counts() {
        let mut pool = BlockPool::new(1, 4);
        pool.push(0, profile(0, 0, 1.0)).unwrap();
        let bad = BlockProfile::new(addr(0, 1), 0, vec![1.0], 1.0);
        let err = pool.push(0, bad).unwrap_err();
        assert_eq!(err, PvError::MismatchedWlCount { expected: 4, got: 1 });
    }

    #[test]
    fn min_pool_len_tracks_smallest() {
        let mut pool = BlockPool::new(2, 4);
        pool.push(0, profile(0, 0, 1.0)).unwrap();
        pool.push(0, profile(0, 1, 2.0)).unwrap();
        pool.push(1, profile(1, 0, 3.0)).unwrap();
        assert_eq!(pool.min_pool_len(), 1);
    }

    #[test]
    fn summary_carries_sum_and_eigen() {
        let p = profile(0, 0, 100.0);
        let s = p.summary(4);
        assert_eq!(s.pgm_sum_us, p.pgm_sum_us());
        assert_eq!(s.eigen.len(), 4);
        assert_eq!(s.addr, p.addr());
    }
}
