//! Runtime gathering of similarity data during program operations (§V-B).
//!
//! While a block is open, the flash controller records each word-line's
//! program latency. Whenever all strings of one physical word-line layer
//! have been programmed, the layer is quantized to one bit per string
//! (fastest half → 0) and appended to the block's eigen sequence; the
//! latency itself is accumulated into the block's program-latency sum and
//! then discarded. When the block closes, only the 52-byte
//! [`crate::BlockSummary`] remains.

use crate::eigen::EigenSequence;
use crate::error::PvError;
use crate::profile::BlockSummary;
use crate::Result;
use flash_model::BlockAddr;

/// Latency table of one *open* block: remembers only the current layer.
///
/// ```
/// use pvcheck::gather::BlockGatherer;
/// use flash_model::{BlockAddr, ChipId, PlaneId, BlockId};
///
/// # fn main() -> Result<(), pvcheck::PvError> {
/// let addr = BlockAddr::new(ChipId(0), PlaneId(0), BlockId(7));
/// let mut gatherer = BlockGatherer::new(addr, 4, 2); // 4 strings x 2 layers
/// for (wl, latency) in [1917.0, 1898.6, 1898.6, 1898.6, 1880.1, 1898.6, 1898.6, 1898.6]
///     .iter()
///     .enumerate()
/// {
///     gatherer.record(wl as u32, *latency)?;
/// }
/// let summary = gatherer.finish()?;
/// assert_eq!(summary.eigen.to_string(), "1001 0011");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BlockGatherer {
    addr: BlockAddr,
    strings: u16,
    wl_total: u32,
    next_wl: u32,
    current_layer: Vec<f64>,
    pgm_sum_us: f64,
    eigen: EigenSequence,
}

impl BlockGatherer {
    /// Starts gathering for a block with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `strings` or `layers` is zero.
    #[must_use]
    pub fn new(addr: BlockAddr, strings: u16, layers: u16) -> Self {
        assert!(strings > 0 && layers > 0, "block shape must be non-zero");
        BlockGatherer {
            addr,
            strings,
            wl_total: u32::from(strings) * u32::from(layers),
            next_wl: 0,
            current_layer: Vec::with_capacity(usize::from(strings)),
            pgm_sum_us: 0.0,
            eigen: EigenSequence::zeros(0),
        }
    }

    /// Block being gathered.
    #[must_use]
    pub fn addr(&self) -> BlockAddr {
        self.addr
    }

    /// Word-lines recorded so far.
    #[must_use]
    pub fn recorded(&self) -> u32 {
        self.next_wl
    }

    /// Whether every word-line of the block has been recorded.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.next_wl == self.wl_total
    }

    /// Records the program latency of the next word-line (they must arrive
    /// in program order, which is how real blocks are written).
    ///
    /// # Errors
    ///
    /// Returns [`PvError::GatherOutOfOrder`] for out-of-order word-lines and
    /// [`PvError::GatherComplete`] if the block is already fully recorded.
    pub fn record(&mut self, lwl: u32, latency_us: f64) -> Result<()> {
        if self.is_complete() {
            return Err(PvError::GatherComplete);
        }
        if lwl != self.next_wl {
            return Err(PvError::GatherOutOfOrder { expected: self.next_wl, got: lwl });
        }
        self.current_layer.push(latency_us);
        self.pgm_sum_us += latency_us;
        self.next_wl += 1;
        if self.current_layer.len() == usize::from(self.strings) {
            self.fold_layer();
        }
        Ok(())
    }

    /// Quantizes the completed layer to bits: fastest half of strings → 0,
    /// ties broken by string index, then drops the layer latencies.
    fn fold_layer(&mut self) {
        let s = usize::from(self.strings);
        let fast = (s / 2).max(1);
        let mut idx: Vec<usize> = (0..s).collect();
        idx.sort_by(|&a, &b| {
            self.current_layer[a]
                .partial_cmp(&self.current_layer[b])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut slow = vec![true; s];
        for &i in idx.iter().take(fast) {
            slow[i] = false;
        }
        for bit in slow {
            self.eigen.push(bit);
        }
        self.current_layer.clear();
    }

    /// Closes the block and produces its summary.
    ///
    /// # Errors
    ///
    /// Returns [`PvError::GatherIncomplete`] if word-lines are missing.
    pub fn finish(self) -> Result<BlockSummary> {
        if !self.is_complete() {
            return Err(PvError::GatherIncomplete {
                recorded: self.next_wl,
                needed: self.wl_total,
            });
        }
        Ok(BlockSummary { addr: self.addr, pgm_sum_us: self.pgm_sum_us, eigen: self.eigen })
    }

    /// Current memory footprint of the gatherer in bytes: the running sum,
    /// the partial layer and the eigen bits accumulated so far. Bounded by
    /// `8 + 8*strings + lwls/8`, i.e. tens of bytes — the paper's point that
    /// the latency table exists only for open blocks.
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        8 + self.current_layer.capacity() * 8 + self.eigen.footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank;
    use flash_model::{BlockId, ChipId, PlaneId};

    fn addr() -> BlockAddr {
        BlockAddr::new(ChipId(0), PlaneId(0), BlockId(7))
    }

    #[test]
    fn gathers_sum_and_eigen_in_order() {
        let t = [10.0, 30.0, 20.0, 40.0, 5.0, 5.0, 50.0, 5.0];
        let mut g = BlockGatherer::new(addr(), 4, 2);
        for (i, &lat) in t.iter().enumerate() {
            g.record(i as u32, lat).unwrap();
        }
        let s = g.finish().unwrap();
        assert_eq!(s.pgm_sum_us, t.iter().sum::<f64>());
        // Must match the offline STR-median quantization.
        assert_eq!(s.eigen, rank::str_median_eigen(&t, 4));
    }

    #[test]
    fn out_of_order_rejected() {
        let mut g = BlockGatherer::new(addr(), 4, 2);
        g.record(0, 1.0).unwrap();
        let err = g.record(2, 1.0).unwrap_err();
        assert_eq!(err, PvError::GatherOutOfOrder { expected: 1, got: 2 });
    }

    #[test]
    fn finish_before_complete_rejected() {
        let mut g = BlockGatherer::new(addr(), 4, 2);
        g.record(0, 1.0).unwrap();
        let err = g.finish().unwrap_err();
        assert_eq!(err, PvError::GatherIncomplete { recorded: 1, needed: 8 });
    }

    #[test]
    fn record_after_complete_rejected() {
        let mut g = BlockGatherer::new(addr(), 2, 1);
        g.record(0, 1.0).unwrap();
        g.record(1, 2.0).unwrap();
        assert!(g.is_complete());
        assert_eq!(g.record(2, 3.0).unwrap_err(), PvError::GatherComplete);
    }

    #[test]
    fn footprint_stays_small() {
        let mut g = BlockGatherer::new(addr(), 4, 96);
        for i in 0..384u32 {
            g.record(i, 1000.0 + f64::from(i % 7)).unwrap();
        }
        // 8 (sum) + 32 (layer buffer) + 48 (eigen bits) = well under 100 B.
        assert!(g.footprint_bytes() <= 96, "footprint {}", g.footprint_bytes());
    }

    #[test]
    fn two_string_blocks_mark_one_fast() {
        let mut g = BlockGatherer::new(addr(), 2, 2);
        for (i, lat) in [4.0, 2.0, 1.0, 3.0].iter().enumerate() {
            g.record(i as u32, *lat).unwrap();
        }
        let s = g.finish().unwrap();
        assert_eq!(s.eigen.to_string(), "1001");
    }
}
