//! Sequential assembly (§IV-A-1): same block offset on every chip.

use crate::assembly::{zip_orderings, Assembler};
use crate::profile::BlockPool;
use crate::superblock::Superblock;

/// Pairs the i-th block (by physical block index) of every pool — the
/// scheme "commonly implemented in modern SSDs" the paper compares against.
/// It works to the extent that blocks at the same manufacturing position on
/// different chips share process traits.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialAssembly;

impl SequentialAssembly {
    /// Creates the assembly.
    #[must_use]
    pub fn new() -> Self {
        SequentialAssembly
    }
}

impl Assembler for SequentialAssembly {
    fn name(&self) -> String {
        "Sequential".to_string()
    }

    fn assemble(&mut self, pool: &BlockPool) -> Vec<Superblock> {
        let orderings = (0..pool.pool_count())
            .map(|p| {
                let mut order: Vec<usize> = (0..pool.pool(p).len()).collect();
                order.sort_by_key(|&i| pool.pool(p)[i].addr().block);
                order
            })
            .collect();
        zip_orderings(pool, orderings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly::test_support::*;

    #[test]
    fn produces_valid_assembly() {
        let pool = synthetic_pool(4, 10, 8);
        let sbs = SequentialAssembly::new().assemble(&pool);
        assert_valid_assembly(&pool, &sbs);
    }

    #[test]
    fn pairs_equal_block_indices() {
        let pool = synthetic_pool(3, 5, 8);
        let sbs = SequentialAssembly::new().assemble(&pool);
        for (i, sb) in sbs.iter().enumerate() {
            for &m in &sb.members {
                assert_eq!(m.block.0 as usize, i);
            }
        }
    }
}
