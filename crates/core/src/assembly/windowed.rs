//! Shared machinery for windowed assemblies (§IV-A-4..8).
//!
//! All windowed schemes work the same way: keep each pool sorted fast→slow
//! by block program-latency sum, look at the first `window` blocks of every
//! pool, pick the best combination (one block per pool) under a
//! scheme-specific objective, remove the winners, repeat.

use crate::profile::BlockPool;
use crate::superblock::Superblock;
use flash_model::BlockAddr;

/// Per-pool profile indices sorted fast→slow by program-latency sum
/// (ties by insertion order).
pub(crate) fn sorted_remaining(pool: &BlockPool) -> Vec<Vec<usize>> {
    (0..pool.pool_count())
        .map(|p| {
            let blocks = pool.pool(p);
            let mut order: Vec<usize> = (0..blocks.len()).collect();
            order.sort_by(|&a, &b| {
                blocks[a]
                    .pgm_sum_us()
                    .partial_cmp(&blocks[b].pgm_sum_us())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            order
        })
        .collect()
}

/// Calls `f` with every mixed-radix combination `picks` where
/// `picks[i] < sizes[i]`.
pub(crate) fn for_each_combo(sizes: &[usize], mut f: impl FnMut(&[usize])) {
    if sizes.contains(&0) {
        return;
    }
    let mut picks = vec![0usize; sizes.len()];
    loop {
        f(&picks);
        let mut i = 0;
        loop {
            if i == sizes.len() {
                return;
            }
            picks[i] += 1;
            if picks[i] < sizes[i] {
                break;
            }
            picks[i] = 0;
            i += 1;
        }
    }
}

/// Runs the round loop: `pick_best(windows)` receives, per pool, the window
/// of remaining profile indices (fastest first, at most `window` long) and
/// returns the chosen *position within each window*.
pub(crate) fn assemble_rounds(
    pool: &BlockPool,
    window: usize,
    mut pick_best: impl FnMut(&[&[usize]]) -> Vec<usize>,
) -> Vec<Superblock> {
    assert!(window > 0, "window must be positive");
    let pools = pool.pool_count();
    let mut remaining = sorted_remaining(pool);
    let rounds = pool.min_pool_len();
    let mut sbs = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let windows: Vec<&[usize]> = remaining.iter().map(|r| &r[..r.len().min(window)]).collect();
        let picks = pick_best(&windows);
        debug_assert_eq!(picks.len(), pools);
        let members: Vec<BlockAddr> =
            (0..pools).map(|p| pool.pool(p)[remaining[p][picks[p]]].addr()).collect();
        for (p, &pick) in picks.iter().enumerate() {
            remaining[p].remove(pick);
        }
        sbs.push(Superblock::new(members));
    }
    sbs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly::test_support::*;

    #[test]
    fn combos_enumerate_full_product() {
        let mut n = 0;
        for_each_combo(&[3, 2, 4], |_| n += 1);
        assert_eq!(n, 24);
    }

    #[test]
    fn combos_with_zero_size_do_nothing() {
        let mut n = 0;
        for_each_combo(&[3, 0], |_| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn combos_cover_every_tuple_once() {
        let mut seen = std::collections::HashSet::new();
        for_each_combo(&[2, 2, 2], |p| {
            assert!(seen.insert(p.to_vec()));
        });
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn sorted_remaining_is_fast_first() {
        let pool = synthetic_pool(3, 8, 8);
        for (p, order) in sorted_remaining(&pool).iter().enumerate() {
            let sums: Vec<f64> = order.iter().map(|&i| pool.pool(p)[i].pgm_sum_us()).collect();
            assert!(sums.windows(2).all(|w| w[0] <= w[1]), "{sums:?}");
        }
    }

    #[test]
    fn greedy_head_pick_is_a_valid_assembly() {
        let pool = synthetic_pool(4, 6, 8);
        let sbs = assemble_rounds(&pool, 3, |windows| vec![0; windows.len()]);
        assert_valid_assembly(&pool, &sbs);
    }
}
