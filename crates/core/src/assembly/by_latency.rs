//! Latency-sorted assemblies (§IV-A-2 and §IV-A-3).

use crate::assembly::{zip_orderings, Assembler};
use crate::profile::BlockPool;
use crate::superblock::Superblock;

/// Which latency figure to sort blocks by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortKey {
    /// Block erase latency (the paper's ERS-LTN direction).
    Erase,
    /// Block program-latency sum (the paper's PGM-LTN direction).
    Program,
}

/// Sorts each pool fast→slow by a latency key and zips: the i-th fastest
/// blocks of every chip form superblock i.
#[derive(Debug, Clone, Copy)]
pub struct LatencySortAssembly {
    key: SortKey,
}

impl LatencySortAssembly {
    /// An assembly sorting by the given key.
    #[must_use]
    pub fn new(key: SortKey) -> Self {
        LatencySortAssembly { key }
    }
}

impl Assembler for LatencySortAssembly {
    fn name(&self) -> String {
        match self.key {
            SortKey::Erase => "ERS-LTN".to_string(),
            SortKey::Program => "PGM-LTN".to_string(),
        }
    }

    fn assemble(&mut self, pool: &BlockPool) -> Vec<Superblock> {
        let orderings = (0..pool.pool_count())
            .map(|p| {
                let blocks = pool.pool(p);
                let mut order: Vec<usize> = (0..blocks.len()).collect();
                order.sort_by(|&a, &b| {
                    let (ka, kb) = match self.key {
                        SortKey::Erase => (blocks[a].tbers_us(), blocks[b].tbers_us()),
                        SortKey::Program => (blocks[a].pgm_sum_us(), blocks[b].pgm_sum_us()),
                    };
                    ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
                });
                order
            })
            .collect();
        zip_orderings(pool, orderings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly::test_support::*;

    #[test]
    fn produces_valid_assembly() {
        let pool = synthetic_pool(4, 10, 8);
        for key in [SortKey::Erase, SortKey::Program] {
            let sbs = LatencySortAssembly::new(key).assemble(&pool);
            assert_valid_assembly(&pool, &sbs);
        }
    }

    #[test]
    fn program_sort_orders_superblocks_fast_to_slow() {
        let pool = synthetic_pool(4, 10, 8);
        let sbs = LatencySortAssembly::new(SortKey::Program).assemble(&pool);
        // The first superblock's members are each pool's fastest block.
        for &m in &sbs[0].members {
            let p = pool.pool_of(m).unwrap();
            let min = pool.pool(p).iter().map(|b| b.pgm_sum_us()).fold(f64::INFINITY, f64::min);
            assert_eq!(pool.profile(m).unwrap().pgm_sum_us(), min);
        }
    }

    #[test]
    fn erase_sort_orders_by_tbers() {
        let pool = synthetic_pool(4, 10, 8);
        let sbs = LatencySortAssembly::new(SortKey::Erase).assemble(&pool);
        for &m in &sbs[0].members {
            let p = pool.pool_of(m).unwrap();
            let min = pool.pool(p).iter().map(|b| b.tbers_us()).fold(f64::INFINITY, f64::min);
            assert_eq!(pool.profile(m).unwrap().tbers_us(), min);
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(LatencySortAssembly::new(SortKey::Erase).name(), "ERS-LTN");
        assert_eq!(LatencySortAssembly::new(SortKey::Program).name(), "PGM-LTN");
    }
}
