//! Local optimal assembly (§IV-A-4): windowed brute force on the real
//! objective.

use crate::assembly::windowed::assemble_rounds;
use crate::assembly::Assembler;
use crate::profile::BlockPool;
use crate::superblock::Superblock;

/// Enumerates every combination of the `window` fastest remaining blocks of
/// each pool and keeps the one with the smallest *actual* extra program
/// latency.
///
/// With window 8 and four pools this checks 4,096 combinations per
/// superblock — the paper's impractical-but-instructive ground reference.
#[derive(Debug, Clone, Copy)]
pub struct OptimalAssembly {
    window: usize,
}

impl OptimalAssembly {
    /// An optimal assembly with the given window size.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        OptimalAssembly { window }
    }

    /// The window size.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Assembler for OptimalAssembly {
    fn name(&self) -> String {
        format!("Optimal({})", self.window)
    }

    fn assemble(&mut self, pool: &BlockPool) -> Vec<Superblock> {
        let pools = pool.pool_count();
        let wl_count = pool.wl_count();
        // Scratch min/max buffers, one pair per recursion level above the
        // innermost, reused across rounds.
        let mut scratch: Vec<(Vec<f64>, Vec<f64>)> =
            vec![(vec![0.0; wl_count], vec![0.0; wl_count]); pools.saturating_sub(1)];
        let top_min = vec![f64::INFINITY; wl_count];
        let top_max = vec![f64::NEG_INFINITY; wl_count];
        assemble_rounds(pool, self.window, |windows| {
            let cands: Vec<Vec<&[f64]>> = (0..pools)
                .map(|p| windows[p].iter().map(|&i| pool.pool(p)[i].tprog_us()).collect())
                .collect();
            let mut best_score = f64::INFINITY;
            let mut best = vec![0usize; pools];
            let mut picks = vec![0usize; pools];
            if !cands.iter().any(Vec::is_empty) {
                search(
                    &cands,
                    pools - 1,
                    &top_min,
                    &top_max,
                    &mut scratch,
                    &mut picks,
                    &mut best_score,
                    &mut best,
                );
            }
            best
        })
    }
}

/// Enumerates pick combinations in mixed-radix order (pool 0 varying
/// fastest, exactly like the plain product loop) but carries per-word-line
/// min/max of the already-chosen suffix pools, so scoring the innermost
/// pool touches one candidate instead of all pools — and prunes any branch
/// whose partial spread already reaches `best_score`.
///
/// Equivalence to the brute force is exact, not approximate: per-WL min/max
/// are order-insensitive, the winning score is summed in the same WL order,
/// and pruning only discards combinations whose score provably cannot be
/// *strictly* below the incumbent — the same first-strictly-better combo
/// wins (asserted by `matches_plain_brute_force`).
#[allow(clippy::too_many_arguments)]
fn search(
    cands: &[Vec<&[f64]>],
    level: usize,
    suffix_min: &[f64],
    suffix_max: &[f64],
    scratch: &mut [(Vec<f64>, Vec<f64>)],
    picks: &mut [usize],
    best_score: &mut f64,
    best: &mut [usize],
) {
    if level == 0 {
        for (i, cand) in cands[0].iter().enumerate() {
            picks[0] = i;
            let mut sum = 0.0;
            let mut pruned = false;
            for (wl, &t) in cand.iter().enumerate() {
                let max = if t > suffix_max[wl] { t } else { suffix_max[wl] };
                let min = if t < suffix_min[wl] { t } else { suffix_min[wl] };
                sum += max - min;
                if sum >= *best_score {
                    pruned = true;
                    break;
                }
            }
            if !pruned && sum < *best_score {
                *best_score = sum;
                best.copy_from_slice(picks);
            }
        }
        return;
    }
    let ((level_min, level_max), rest) =
        scratch.split_first_mut().expect("one scratch pair per non-innermost level");
    for (i, cand) in cands[level].iter().enumerate() {
        picks[level] = i;
        // Merge this candidate into the suffix spread, and lower-bound the
        // final score: adding pools can only widen each WL's spread.
        let mut bound = 0.0;
        for (wl, &t) in cand.iter().enumerate() {
            let max = if t > suffix_max[wl] { t } else { suffix_max[wl] };
            let min = if t < suffix_min[wl] { t } else { suffix_min[wl] };
            level_min[wl] = min;
            level_max[wl] = max;
            bound += max - min;
        }
        if bound >= *best_score {
            continue;
        }
        search(cands, level - 1, level_min, level_max, rest, picks, best_score, best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly::test_support::*;
    use crate::assembly::RandomAssembly;
    use crate::superblock::ExtraLatency;

    fn avg_extra_pgm(pool: &BlockPool, sbs: &[Superblock]) -> f64 {
        sbs.iter().map(|sb| ExtraLatency::of_superblock(pool, sb).unwrap().program_us).sum::<f64>()
            / sbs.len() as f64
    }

    #[test]
    fn produces_valid_assembly() {
        let pool = synthetic_pool(4, 8, 8);
        let sbs = OptimalAssembly::new(4).assemble(&pool);
        assert_valid_assembly(&pool, &sbs);
    }

    #[test]
    fn beats_random_on_average() {
        let pool = synthetic_pool(4, 16, 16);
        let opt = avg_extra_pgm(&pool, &OptimalAssembly::new(8).assemble(&pool));
        let rnd = avg_extra_pgm(&pool, &RandomAssembly::new(1).assemble(&pool));
        assert!(opt < rnd, "optimal {opt} vs random {rnd}");
    }

    #[test]
    fn window_one_degenerates_to_program_sort() {
        use crate::assembly::{LatencySortAssembly, SortKey};
        let pool = synthetic_pool(4, 8, 8);
        let opt = OptimalAssembly::new(1).assemble(&pool);
        let sorted = LatencySortAssembly::new(SortKey::Program).assemble(&pool);
        assert_eq!(opt, sorted);
    }

    #[test]
    fn larger_window_is_no_worse() {
        let pool = synthetic_pool(4, 16, 16);
        let w2 = avg_extra_pgm(&pool, &OptimalAssembly::new(2).assemble(&pool));
        let w8 = avg_extra_pgm(&pool, &OptimalAssembly::new(8).assemble(&pool));
        // Greedy rounds mean this is not a theorem, but on well-behaved
        // pools the wider window should win (the paper's Table II trend).
        assert!(w8 <= w2 * 1.05, "w8 {w8} vs w2 {w2}");
    }

    #[test]
    fn name_includes_window() {
        assert_eq!(OptimalAssembly::new(8).name(), "Optimal(8)");
    }

    /// The plain windowed brute force the branch-and-bound search replaced.
    fn assemble_brute_force(pool: &BlockPool, window: usize) -> Vec<Superblock> {
        use crate::assembly::windowed::for_each_combo;
        use crate::superblock::extra_program_us;
        let pools = pool.pool_count();
        let mut candidate: Vec<&[f64]> = Vec::with_capacity(pools);
        assemble_rounds(pool, window, |windows| {
            let sizes: Vec<usize> = windows.iter().map(|w| w.len()).collect();
            let mut best_score = f64::INFINITY;
            let mut best = vec![0usize; pools];
            for_each_combo(&sizes, |picks| {
                candidate.clear();
                for (p, &pick) in picks.iter().enumerate() {
                    candidate.push(pool.pool(p)[windows[p][pick]].tprog_us());
                }
                let s = extra_program_us(&candidate);
                if s < best_score {
                    best_score = s;
                    best.copy_from_slice(picks);
                }
            });
            best
        })
    }

    #[test]
    fn matches_plain_brute_force() {
        // Exact equality, including tie-breaks: the pruned search must pick
        // the same first-strictly-better combination every round.
        for (pools, blocks, window) in [(4, 12, 8), (3, 10, 4), (2, 6, 6), (1, 4, 3), (4, 9, 1)] {
            let pool = synthetic_pool(pools, blocks, 16);
            let fast = OptimalAssembly::new(window).assemble(&pool);
            let slow = assemble_brute_force(&pool, window);
            assert_eq!(fast, slow, "pools={pools} blocks={blocks} window={window}");
        }
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = OptimalAssembly::new(0);
    }
}
