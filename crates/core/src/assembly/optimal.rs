//! Local optimal assembly (§IV-A-4): windowed brute force on the real
//! objective.

use crate::assembly::windowed::{assemble_rounds, for_each_combo};
use crate::assembly::Assembler;
use crate::profile::BlockPool;
use crate::superblock::{extra_program_us, Superblock};

/// Enumerates every combination of the `window` fastest remaining blocks of
/// each pool and keeps the one with the smallest *actual* extra program
/// latency.
///
/// With window 8 and four pools this checks 4,096 combinations per
/// superblock — the paper's impractical-but-instructive ground reference.
#[derive(Debug, Clone, Copy)]
pub struct OptimalAssembly {
    window: usize,
}

impl OptimalAssembly {
    /// An optimal assembly with the given window size.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        OptimalAssembly { window }
    }

    /// The window size.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Assembler for OptimalAssembly {
    fn name(&self) -> String {
        format!("Optimal({})", self.window)
    }

    fn assemble(&mut self, pool: &BlockPool) -> Vec<Superblock> {
        let pools = pool.pool_count();
        let mut candidate: Vec<&[f64]> = Vec::with_capacity(pools);
        assemble_rounds(pool, self.window, |windows| {
            let sizes: Vec<usize> = windows.iter().map(|w| w.len()).collect();
            let mut best_score = f64::INFINITY;
            let mut best = vec![0usize; pools];
            for_each_combo(&sizes, |picks| {
                candidate.clear();
                for (p, &pick) in picks.iter().enumerate() {
                    candidate.push(pool.pool(p)[windows[p][pick]].tprog_us());
                }
                let s = extra_program_us(&candidate);
                if s < best_score {
                    best_score = s;
                    best.copy_from_slice(picks);
                }
            });
            best
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly::test_support::*;
    use crate::assembly::RandomAssembly;
    use crate::superblock::ExtraLatency;

    fn avg_extra_pgm(pool: &BlockPool, sbs: &[Superblock]) -> f64 {
        sbs.iter()
            .map(|sb| ExtraLatency::of_superblock(pool, sb).unwrap().program_us)
            .sum::<f64>()
            / sbs.len() as f64
    }

    #[test]
    fn produces_valid_assembly() {
        let pool = synthetic_pool(4, 8, 8);
        let sbs = OptimalAssembly::new(4).assemble(&pool);
        assert_valid_assembly(&pool, &sbs);
    }

    #[test]
    fn beats_random_on_average() {
        let pool = synthetic_pool(4, 16, 16);
        let opt = avg_extra_pgm(&pool, &OptimalAssembly::new(8).assemble(&pool));
        let rnd = avg_extra_pgm(&pool, &RandomAssembly::new(1).assemble(&pool));
        assert!(opt < rnd, "optimal {opt} vs random {rnd}");
    }

    #[test]
    fn window_one_degenerates_to_program_sort() {
        use crate::assembly::{LatencySortAssembly, SortKey};
        let pool = synthetic_pool(4, 8, 8);
        let opt = OptimalAssembly::new(1).assemble(&pool);
        let sorted = LatencySortAssembly::new(SortKey::Program).assemble(&pool);
        assert_eq!(opt, sorted);
    }

    #[test]
    fn larger_window_is_no_worse() {
        let pool = synthetic_pool(4, 16, 16);
        let w2 = avg_extra_pgm(&pool, &OptimalAssembly::new(2).assemble(&pool));
        let w8 = avg_extra_pgm(&pool, &OptimalAssembly::new(8).assemble(&pool));
        // Greedy rounds mean this is not a theorem, but on well-behaved
        // pools the wider window should win (the paper's Table II trend).
        assert!(w8 <= w2 * 1.05, "w8 {w8} vs w2 {w2}");
    }

    #[test]
    fn name_includes_window() {
        assert_eq!(OptimalAssembly::new(8).name(), "Optimal(8)");
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = OptimalAssembly::new(0);
    }
}
