//! Superblock organization schemes: the eight directions of §IV plus the
//! practical runtime scheme QSTR-MED of §V.
//!
//! Every scheme implements [`Assembler`]: given a [`BlockPool`] it returns a
//! list of superblocks, each taking exactly one block from every pool.
//!
//! | Scheme | Paper name | Idea |
//! |---|---|---|
//! | [`RandomAssembly`] | Random | the baseline: arbitrary grouping |
//! | [`SequentialAssembly`] | Sequential | same block offset on every chip |
//! | [`LatencySortAssembly`] | ERS-LTN / PGM-LTN | sort pools by a latency key and zip |
//! | [`OptimalAssembly`] | Optimal(w) | windowed brute force minimizing actual extra program latency |
//! | [`RankAssembly`] | LWL/PWL/STR-RANK(w), STR-MED(w) | windowed brute force minimizing Equation-1 rank distance |
//! | [`QstrMed`] | QSTR-MED | reference-block eigen matching over sorted lists, on demand |

mod by_latency;
mod optimal;
mod qstr_med;
mod random;
mod rank_based;
mod sequential;
mod windowed;

pub use by_latency::{LatencySortAssembly, SortKey};
pub use optimal::OptimalAssembly;
pub use qstr_med::QstrMed;
pub use random::RandomAssembly;
pub use rank_based::{RankAssembly, RankStrategy};
pub use sequential::SequentialAssembly;

pub use crate::superblock::SpeedClass;

use crate::profile::BlockPool;
use crate::superblock::Superblock;

/// A superblock organization scheme.
pub trait Assembler {
    /// Human-readable name, e.g. `"STR-RANK(8)"`.
    fn name(&self) -> String;

    /// Organizes the pool into superblocks (one member per pool each).
    ///
    /// Emits [`BlockPool::min_pool_len`] superblocks; surplus blocks in
    /// larger pools are left unused, mirroring the paper's equally-sized
    /// chip groups.
    fn assemble(&mut self, pool: &BlockPool) -> Vec<Superblock>;
}

/// Zips per-pool orderings into superblocks: the shared tail of the
/// sequential and latency-sorted assemblies.
pub(crate) fn zip_orderings(pool: &BlockPool, orderings: Vec<Vec<usize>>) -> Vec<Superblock> {
    let count = pool.min_pool_len();
    (0..count)
        .map(|i| {
            Superblock::new(
                orderings
                    .iter()
                    .enumerate()
                    .map(|(p, order)| pool.pool(p)[order[i]].addr())
                    .collect(),
            )
        })
        .collect()
}

#[cfg(test)]
pub(crate) mod test_support {
    use crate::profile::{BlockPool, BlockProfile};
    use flash_model::{BlockAddr, BlockId, ChipId, PlaneId};

    /// A small deterministic pool: `pools` pools of `blocks` blocks with
    /// `lwls` word-lines whose latencies vary by block and word-line.
    pub fn synthetic_pool(pools: usize, blocks: usize, lwls: usize) -> BlockPool {
        let mut pool = BlockPool::new(pools, 4);
        for p in 0..pools {
            for b in 0..blocks {
                let addr = BlockAddr::new(ChipId(p as u16), PlaneId(0), BlockId(b as u32));
                let tprog: Vec<f64> = (0..lwls)
                    .map(|w| {
                        1700.0
                            + 18.4 * f64::from(((p * 7 + b * 13 + w * 3) % 5) as u32)
                            + f64::from(((b * 31 + w * 17) % 7) as u32)
                    })
                    .collect();
                let tbers = 3500.0 + f64::from(((p * 11 + b * 23) % 9) as u32) * 10.0;
                pool.push(p, BlockProfile::new(addr, 0, tprog, tbers)).unwrap();
            }
        }
        pool
    }

    /// Asserts the basic contract: right count, one member per pool, no
    /// member reused across superblocks.
    pub fn assert_valid_assembly(pool: &BlockPool, sbs: &[crate::Superblock]) {
        assert_eq!(sbs.len(), pool.min_pool_len());
        let mut seen = std::collections::HashSet::new();
        for sb in sbs {
            assert_eq!(sb.members.len(), pool.pool_count());
            let mut pools_used = std::collections::HashSet::new();
            for &m in &sb.members {
                assert!(seen.insert(m), "block {m} reused");
                let p = pool.pool_of(m).expect("member must come from the pool");
                assert!(pools_used.insert(p), "pool {p} used twice in one superblock");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;

    #[test]
    fn zip_orderings_respects_pool_order() {
        let pool = synthetic_pool(3, 4, 8);
        let orderings = vec![vec![0, 1, 2, 3]; 3];
        let sbs = zip_orderings(&pool, orderings);
        assert_valid_assembly(&pool, &sbs);
        assert_eq!(sbs[2].members[1], pool.pool(1)[2].addr());
    }

    #[test]
    fn zip_orderings_clamps_to_smallest_pool() {
        let mut pool = synthetic_pool(2, 3, 8);
        // Add an extra block to pool 0 only.
        let extra = crate::BlockProfile::new(
            flash_model::BlockAddr::new(
                flash_model::ChipId(0),
                flash_model::PlaneId(0),
                flash_model::BlockId(99),
            ),
            0,
            vec![1.0; 8],
            1.0,
        );
        pool.push(0, extra).unwrap();
        let sbs = zip_orderings(&pool, vec![vec![0, 1, 2, 3], vec![0, 1, 2]]);
        assert_eq!(sbs.len(), 3);
    }
}
