//! Rank-similarity assemblies (§IV-A-5..8): LWL-rank, PWL-rank, STR-rank
//! and STR-median.
//!
//! Each pool stays sorted by block program-latency sum; within a window the
//! combination minimizing the Equation-1 pairwise rank distance wins. The
//! four variants differ only in how a block is reduced to a comparison
//! vector.

use crate::assembly::windowed::{assemble_rounds, for_each_combo};
use crate::assembly::Assembler;
use crate::distance::rank_distance;
use crate::eigen::EigenSequence;
use crate::profile::BlockPool;
use crate::rank;
use crate::superblock::Superblock;

/// How a block's word-line latencies are reduced for comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankStrategy {
    /// Rank all logical word-lines together (ranks `0..lwls`).
    Lwl,
    /// Rank each string's physical word-lines (ranks `0..layers`).
    Pwl,
    /// Rank the strings within each layer (ranks `0..strings`).
    Str,
    /// One bit per word-line: fastest half of strings per layer → 0.
    StrMedian,
}

impl RankStrategy {
    fn paper_name(self) -> &'static str {
        match self {
            RankStrategy::Lwl => "LWL-RANK",
            RankStrategy::Pwl => "PWL-RANK",
            RankStrategy::Str => "STR-RANK",
            RankStrategy::StrMedian => "STR-MED",
        }
    }
}

enum Vectors {
    Ranks(Vec<Vec<Vec<u32>>>),
    Eigens(Vec<Vec<EigenSequence>>),
}

/// Windowed assembly minimizing summed pairwise rank distance.
#[derive(Debug, Clone, Copy)]
pub struct RankAssembly {
    strategy: RankStrategy,
    window: usize,
}

impl RankAssembly {
    /// A rank assembly with the given strategy and window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(strategy: RankStrategy, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        RankAssembly { strategy, window }
    }

    /// The comparison strategy.
    #[must_use]
    pub fn strategy(&self) -> RankStrategy {
        self.strategy
    }

    /// The window size.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    fn precompute(&self, pool: &BlockPool) -> Vectors {
        let strings = pool.strings();
        match self.strategy {
            RankStrategy::StrMedian => Vectors::Eigens(
                (0..pool.pool_count())
                    .map(|p| {
                        pool.pool(p)
                            .iter()
                            .map(|b| rank::str_median_eigen(b.tprog_us(), strings))
                            .collect()
                    })
                    .collect(),
            ),
            _ => Vectors::Ranks(
                (0..pool.pool_count())
                    .map(|p| {
                        pool.pool(p)
                            .iter()
                            .map(|b| match self.strategy {
                                RankStrategy::Lwl => rank::lwl_ranks(b.tprog_us()),
                                RankStrategy::Pwl => rank::pwl_ranks(b.tprog_us(), strings),
                                RankStrategy::Str => rank::str_ranks(b.tprog_us(), strings),
                                RankStrategy::StrMedian => unreachable!(),
                            })
                            .collect()
                    })
                    .collect(),
            ),
        }
    }
}

impl Assembler for RankAssembly {
    fn name(&self) -> String {
        format!("{}({})", self.strategy.paper_name(), self.window)
    }

    fn assemble(&mut self, pool: &BlockPool) -> Vec<Superblock> {
        let vectors = self.precompute(pool);
        let pools = pool.pool_count();
        let distance = |p: usize, i: usize, q: usize, j: usize| -> u64 {
            match &vectors {
                Vectors::Ranks(r) => u64::from(rank_distance(&r[p][i], &r[q][j])),
                Vectors::Eigens(e) => u64::from(e[p][i].distance(&e[q][j])),
            }
        };
        assemble_rounds(pool, self.window, |windows| {
            // Pairwise distance matrices between window candidates, so each
            // combination scores with C(pools, 2) lookups instead of full
            // vector comparisons.
            let sizes: Vec<usize> = windows.iter().map(|w| w.len()).collect();
            let mut mats: Vec<Vec<Vec<u64>>> = vec![Vec::new(); pools * pools];
            for p in 0..pools {
                for q in (p + 1)..pools {
                    let mut m = vec![vec![0u64; sizes[q]]; sizes[p]];
                    for (a, row) in m.iter_mut().enumerate() {
                        for (b, cell) in row.iter_mut().enumerate() {
                            *cell = distance(p, windows[p][a], q, windows[q][b]);
                        }
                    }
                    mats[p * pools + q] = m;
                }
            }
            let mut best_score = u64::MAX;
            let mut best = vec![0usize; pools];
            for_each_combo(&sizes, |picks| {
                let mut s = 0u64;
                for p in 0..pools {
                    for q in (p + 1)..pools {
                        s += mats[p * pools + q][picks[p]][picks[q]];
                    }
                }
                if s < best_score {
                    best_score = s;
                    best.copy_from_slice(picks);
                }
            });
            best
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly::test_support::*;
    use crate::assembly::RandomAssembly;
    use crate::superblock::ExtraLatency;

    fn avg_extra_pgm(pool: &BlockPool, sbs: &[Superblock]) -> f64 {
        sbs.iter().map(|sb| ExtraLatency::of_superblock(pool, sb).unwrap().program_us).sum::<f64>()
            / sbs.len() as f64
    }

    #[test]
    fn all_strategies_produce_valid_assemblies() {
        let pool = synthetic_pool(4, 8, 16);
        for strategy in
            [RankStrategy::Lwl, RankStrategy::Pwl, RankStrategy::Str, RankStrategy::StrMedian]
        {
            let sbs = RankAssembly::new(strategy, 4).assemble(&pool);
            assert_valid_assembly(&pool, &sbs);
        }
    }

    #[test]
    fn str_rank_beats_random() {
        let pool = synthetic_pool(4, 16, 16);
        let ranked = avg_extra_pgm(&pool, &RankAssembly::new(RankStrategy::Str, 8).assemble(&pool));
        let random = avg_extra_pgm(&pool, &RandomAssembly::new(2).assemble(&pool));
        assert!(ranked < random, "STR-RANK {ranked} vs random {random}");
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(RankAssembly::new(RankStrategy::Lwl, 8).name(), "LWL-RANK(8)");
        assert_eq!(RankAssembly::new(RankStrategy::StrMedian, 4).name(), "STR-MED(4)");
    }

    #[test]
    fn window_one_is_program_sort() {
        use crate::assembly::{LatencySortAssembly, SortKey};
        let pool = synthetic_pool(4, 8, 8);
        let ranked = RankAssembly::new(RankStrategy::Str, 1).assemble(&pool);
        let sorted = LatencySortAssembly::new(SortKey::Program).assemble(&pool);
        assert_eq!(ranked, sorted);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = RankAssembly::new(RankStrategy::Str, 0);
    }
}
