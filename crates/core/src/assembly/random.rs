//! Random assembly: the paper's baseline.

use crate::assembly::{zip_orderings, Assembler};
use crate::profile::BlockPool;
use crate::superblock::Superblock;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Groups blocks arbitrarily — what an organization-oblivious FTL does and
/// the baseline every paper number is normalized against.
#[derive(Debug, Clone)]
pub struct RandomAssembly {
    seed: u64,
}

impl RandomAssembly {
    /// A random assembly with a deterministic shuffle seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RandomAssembly { seed }
    }
}

impl Assembler for RandomAssembly {
    fn name(&self) -> String {
        "Random".to_string()
    }

    fn assemble(&mut self, pool: &BlockPool) -> Vec<Superblock> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let orderings = (0..pool.pool_count())
            .map(|p| {
                let mut order: Vec<usize> = (0..pool.pool(p).len()).collect();
                order.shuffle(&mut rng);
                order
            })
            .collect();
        zip_orderings(pool, orderings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly::test_support::*;

    #[test]
    fn produces_valid_assembly() {
        let pool = synthetic_pool(4, 10, 8);
        let sbs = RandomAssembly::new(3).assemble(&pool);
        assert_valid_assembly(&pool, &sbs);
    }

    #[test]
    fn same_seed_same_result() {
        let pool = synthetic_pool(4, 10, 8);
        assert_eq!(RandomAssembly::new(3).assemble(&pool), RandomAssembly::new(3).assemble(&pool));
    }

    #[test]
    fn different_seeds_differ() {
        let pool = synthetic_pool(4, 32, 8);
        assert_ne!(RandomAssembly::new(3).assemble(&pool), RandomAssembly::new(4).assemble(&pool));
    }
}
