//! QSTR-MED (§V): the practical, on-demand superblock organizer.
//!
//! Instead of enumerating every window combination (1,536 distance checks
//! for STR-MED with window 4 on four pools), QSTR-MED:
//!
//! 1. keeps each pool's free blocks in a sorted program-latency list;
//! 2. on a *fast* request, takes the globally fastest head block as the
//!    reference (on a *slow* request, the globally slowest tail block);
//! 3. in each other pool, XOR-compares the reference's eigen sequence
//!    against only the `candidates` head (or tail) blocks and keeps the
//!    closest — 12 checks for four pools and four candidates, a 99.22 %
//!    reduction.

use crate::assembly::Assembler;
use crate::eigen::EigenSequence;
use crate::profile::{BlockPool, BlockSummary};
use crate::sorted_list::SortedLatencyList;
use crate::superblock::{SpeedClass, Superblock};
use flash_model::BlockAddr;
use std::collections::HashMap;

/// The QSTR-MED runtime state: sorted lists plus the eigen store.
///
/// Use [`QstrMed::insert`] as blocks close (fed by
/// [`gather::BlockGatherer`](crate::gather::BlockGatherer)) and
/// [`QstrMed::assemble_on_demand`] when the FTL needs a superblock. The
/// [`Assembler`] impl loads a whole characterized pool and drains it
/// fastest-first for batch experiments.
///
/// ```
/// use flash_model::{FlashArray, FlashConfig};
/// use pvcheck::assembly::QstrMed;
/// use pvcheck::{Characterizer, SpeedClass};
///
/// let config = FlashConfig::small_test();
/// let array = FlashArray::new(config.clone(), 9);
/// let pool = Characterizer::new(&config).snapshot(array.latency_model(), 0);
///
/// let mut qstr = QstrMed::with_candidates(4);
/// let strings = pool.strings();
/// for p in 0..pool.pool_count() {
///     for block in pool.pool(p) {
///         qstr.insert(p, block.summary(strings));
///     }
/// }
/// let fast = qstr.assemble_on_demand(SpeedClass::Fast).expect("pools are full");
/// assert_eq!(fast.class, Some(SpeedClass::Fast));
/// assert!(qstr.distance_checks() <= 12);
/// ```
#[derive(Debug, Clone)]
pub struct QstrMed {
    candidates: usize,
    lists: Vec<SortedLatencyList>,
    eigens: HashMap<BlockAddr, EigenSequence>,
    distance_checks: u64,
}

impl QstrMed {
    /// QSTR-MED with the paper's default of 4 candidates per pool.
    #[must_use]
    pub fn new() -> Self {
        QstrMed::with_candidates(4)
    }

    /// QSTR-MED examining `candidates` head/tail blocks per other pool.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is zero.
    #[must_use]
    pub fn with_candidates(candidates: usize) -> Self {
        assert!(candidates > 0, "candidate count must be positive");
        QstrMed { candidates, lists: Vec::new(), eigens: HashMap::new(), distance_checks: 0 }
    }

    /// Candidate-list depth.
    #[must_use]
    pub fn candidates(&self) -> usize {
        self.candidates
    }

    /// Number of pools currently tracked.
    #[must_use]
    pub fn pool_count(&self) -> usize {
        self.lists.len()
    }

    /// Free blocks in the emptiest pool — how many more superblocks can be
    /// assembled.
    #[must_use]
    pub fn available(&self) -> usize {
        self.lists.iter().map(SortedLatencyList::len).min().unwrap_or(0)
    }

    /// Free blocks registered in one pool (0 for unknown pools).
    #[must_use]
    pub fn pool_len(&self, pool: usize) -> usize {
        self.lists.get(pool).map_or(0, SortedLatencyList::len)
    }

    /// Total eigen distance checks performed so far — the paper's computing
    /// overhead metric.
    #[must_use]
    pub fn distance_checks(&self) -> u64 {
        self.distance_checks
    }

    /// Registers a closed block's summary under its pool.
    pub fn insert(&mut self, pool: usize, summary: BlockSummary) {
        if pool >= self.lists.len() {
            self.lists.resize_with(pool + 1, SortedLatencyList::new);
        }
        self.lists[pool].insert(summary.pgm_sum_us, summary.addr);
        self.eigens.insert(summary.addr, summary.eigen);
    }

    /// Assembles one superblock on demand, or `None` if some pool is empty.
    ///
    /// `Fast` picks the globally fastest head block as reference and matches
    /// against each other pool's fastest candidates; `Slow` mirrors this at
    /// the tails.
    pub fn assemble_on_demand(&mut self, class: SpeedClass) -> Option<Superblock> {
        if self.lists.is_empty() || self.lists.iter().any(SortedLatencyList::is_empty) {
            return None;
        }
        // 1. Reference: the extreme block across all pools.
        let (ref_pool, ref_sum, ref_addr) = match class {
            SpeedClass::Fast => self
                .lists
                .iter()
                .enumerate()
                .map(|(p, l)| {
                    let (s, a) = l.fastest().expect("checked non-empty");
                    (p, s, a)
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))?,
            SpeedClass::Slow => self
                .lists
                .iter()
                .enumerate()
                .map(|(p, l)| {
                    let (s, a) = l.slowest().expect("checked non-empty");
                    (p, s, a)
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))?,
        };
        // 2. In every other pool, keep the closest of the head/tail
        //    candidates. The reference eigen is borrowed from the store and
        //    candidates are walked by index on the sorted backing slice —
        //    this path allocates nothing until the winning members are
        //    collected.
        let ref_eigen = &self.eigens[&ref_addr];
        let mut checks = 0u64;
        let mut members: Vec<(usize, f64, BlockAddr)> = Vec::with_capacity(self.lists.len());
        members.push((ref_pool, ref_sum, ref_addr));
        for (p, list) in self.lists.iter().enumerate() {
            if p == ref_pool {
                continue;
            }
            let entries = list.as_slice();
            let take = self.candidates.min(entries.len());
            let mut best: Option<(u32, f64, BlockAddr)> = None;
            for k in 0..take {
                // Fast requests scan the head fastest-first, slow requests
                // the tail slowest-first (ties keep the more extreme block).
                let (sum, addr) = match class {
                    SpeedClass::Fast => entries[k],
                    SpeedClass::Slow => entries[entries.len() - 1 - k],
                };
                let d = ref_eigen.distance(&self.eigens[&addr]);
                checks += 1;
                if best.is_none_or(|(bd, _, _)| d < bd) {
                    best = Some((d, sum, addr));
                }
            }
            let (_, sum, chosen) = best.expect("candidate list non-empty");
            members.push((p, sum, chosen));
        }
        self.distance_checks += checks;
        // 3. Claim the members and emit in pool order.
        members.sort_by_key(|&(p, _, _)| p);
        let addrs: Vec<BlockAddr> = members.iter().map(|&(_, _, a)| a).collect();
        for &(p, sum, a) in &members {
            let removed = self.lists[p].remove(sum, a);
            debug_assert!(removed);
            self.eigens.remove(&a);
        }
        Some(Superblock::with_class(addrs, class))
    }

    /// Returns a claimed block to its pool (e.g. after garbage collection
    /// frees it), re-registering its summary.
    pub fn release(&mut self, pool: usize, summary: BlockSummary) {
        self.insert(pool, summary);
    }

    /// Removes and returns the fastest registered block of one pool,
    /// bypassing similarity matching (used for mixed warm-up assemblies).
    pub fn take_fastest(&mut self, pool: usize) -> Option<BlockAddr> {
        let (sum, addr) = self.lists.get(pool)?.fastest()?;
        self.lists[pool].remove(sum, addr);
        self.eigens.remove(&addr);
        Some(addr)
    }
}

impl Default for QstrMed {
    fn default() -> Self {
        QstrMed::new()
    }
}

impl Assembler for QstrMed {
    fn name(&self) -> String {
        format!("QSTR-MED({})", self.candidates)
    }

    fn assemble(&mut self, pool: &BlockPool) -> Vec<Superblock> {
        self.lists = vec![SortedLatencyList::new(); pool.pool_count()];
        self.eigens.clear();
        let strings = pool.strings();
        for p in 0..pool.pool_count() {
            for b in pool.pool(p) {
                self.insert(p, b.summary(strings));
            }
        }
        let mut sbs = Vec::with_capacity(pool.min_pool_len());
        while let Some(sb) = self.assemble_on_demand(SpeedClass::Fast) {
            sbs.push(sb);
        }
        sbs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly::test_support::*;
    use crate::assembly::RandomAssembly;
    use crate::superblock::ExtraLatency;

    fn avg_extra_pgm(pool: &BlockPool, sbs: &[Superblock]) -> f64 {
        sbs.iter().map(|sb| ExtraLatency::of_superblock(pool, sb).unwrap().program_us).sum::<f64>()
            / sbs.len() as f64
    }

    #[test]
    fn produces_valid_assembly() {
        let pool = synthetic_pool(4, 10, 16);
        let sbs = QstrMed::new().assemble(&pool);
        assert_valid_assembly(&pool, &sbs);
        assert!(sbs.iter().all(|sb| sb.class == Some(SpeedClass::Fast)));
    }

    #[test]
    fn beats_random() {
        let pool = synthetic_pool(4, 16, 16);
        let q = avg_extra_pgm(&pool, &QstrMed::new().assemble(&pool));
        let r = avg_extra_pgm(&pool, &RandomAssembly::new(5).assemble(&pool));
        assert!(q < r, "QSTR-MED {q} vs random {r}");
    }

    #[test]
    fn distance_checks_match_paper_count() {
        let pool = synthetic_pool(4, 8, 16);
        let mut q = QstrMed::with_candidates(4);
        let sbs = q.assemble(&pool);
        // Every superblock: 3 other pools x 4 candidates = 12 checks (fewer
        // only when a list runs short at the tail).
        assert_eq!(sbs.len(), 8);
        let max = 12 * 8;
        assert!(q.distance_checks() <= max, "{} checks", q.distance_checks());
        assert!(q.distance_checks() >= 12 * 4, "{} checks", q.distance_checks());
    }

    #[test]
    fn on_demand_fast_and_slow_classes() {
        let pool = synthetic_pool(4, 6, 16);
        let mut q = QstrMed::new();
        let strings = pool.strings();
        for p in 0..pool.pool_count() {
            for b in pool.pool(p) {
                q.insert(p, b.summary(strings));
            }
        }
        let fast = q.assemble_on_demand(SpeedClass::Fast).unwrap();
        let slow = q.assemble_on_demand(SpeedClass::Slow).unwrap();
        assert_eq!(fast.class, Some(SpeedClass::Fast));
        assert_eq!(slow.class, Some(SpeedClass::Slow));
        // The fast superblock's total program sum must not exceed the slow one's.
        let sum = |sb: &Superblock| -> f64 {
            sb.members.iter().map(|&m| pool.profile(m).unwrap().pgm_sum_us()).sum()
        };
        assert!(sum(&fast) <= sum(&slow));
    }

    #[test]
    fn exhaustion_returns_none() {
        let pool = synthetic_pool(2, 1, 8);
        let mut q = QstrMed::new();
        let sbs = q.assemble(&pool);
        assert_eq!(sbs.len(), 1);
        assert!(q.assemble_on_demand(SpeedClass::Fast).is_none());
    }

    #[test]
    fn empty_state_returns_none() {
        let mut q = QstrMed::new();
        assert!(q.assemble_on_demand(SpeedClass::Fast).is_none());
    }

    #[test]
    fn release_makes_block_available_again() {
        let pool = synthetic_pool(2, 2, 8);
        let strings = pool.strings();
        let mut q = QstrMed::new();
        for p in 0..2 {
            for b in pool.pool(p) {
                q.insert(p, b.summary(strings));
            }
        }
        let sb = q.assemble_on_demand(SpeedClass::Fast).unwrap();
        assert_eq!(q.available(), 1);
        let freed = pool.profile(sb.members[0]).unwrap();
        q.release(0, freed.summary(strings));
        assert_eq!(q.available(), 1);
        assert_eq!(q.lists[0].len(), 2);
    }

    #[test]
    #[should_panic(expected = "candidate count")]
    fn zero_candidates_rejected() {
        let _ = QstrMed::with_candidates(0);
    }

    #[test]
    fn name_includes_candidates() {
        assert_eq!(QstrMed::with_candidates(4).name(), "QSTR-MED(4)");
    }
}
