//! Superblocks and their extra-latency metrics (§III-A, Figure 4).

use crate::error::PvError;
use crate::profile::BlockPool;
use crate::Result;
use flash_model::BlockAddr;
use std::fmt;

/// Demand class of a superblock (§V-C/D): host data goes to fast
/// superblocks, garbage-collection traffic to slow ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpeedClass {
    /// Assembled from the fastest available blocks.
    Fast,
    /// Assembled from the slowest available blocks.
    Slow,
}

impl fmt::Display for SpeedClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SpeedClass::Fast => "FAST",
            SpeedClass::Slow => "SLOW",
        })
    }
}

/// One assembled superblock: one member block per pool.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Superblock {
    /// Member blocks, in pool order.
    pub members: Vec<BlockAddr>,
    /// Demand class, when assembled on demand (QSTR-MED); `None` for batch
    /// assemblies.
    pub class: Option<SpeedClass>,
}

impl Superblock {
    /// A superblock from members in pool order.
    #[must_use]
    pub fn new(members: Vec<BlockAddr>) -> Self {
        Superblock { members, class: None }
    }

    /// A superblock tagged with its demand class.
    #[must_use]
    pub fn with_class(members: Vec<BlockAddr>, class: SpeedClass) -> Self {
        Superblock { members, class: Some(class) }
    }
}

impl fmt::Display for Superblock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SB[")?;
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "]")?;
        if let Some(c) = self.class {
            write!(f, " ({c})")?;
        }
        Ok(())
    }
}

/// The paper's extra-latency metrics for one superblock.
///
/// * `program_us` — Σ over super word-lines of (max − min) member `tPROG`;
/// * `erase_us` — (max − min) member `tBERS`.
///
/// ```
/// use pvcheck::ExtraLatency;
///
/// # fn main() -> pvcheck::Result<()> {
/// let members: [&[f64]; 2] = [&[100.0, 200.0], &[110.0, 190.0]];
/// let e = ExtraLatency::of_vectors(&members, &[3000.0, 3020.0])?;
/// assert_eq!(e.program_us, 10.0 + 10.0);
/// assert_eq!(e.erase_us, 20.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExtraLatency {
    /// Total extra program latency across all super word-lines, µs.
    pub program_us: f64,
    /// Extra erase latency, µs.
    pub erase_us: f64,
}

impl ExtraLatency {
    /// Computes the metrics for a superblock against a profile pool.
    ///
    /// # Errors
    ///
    /// Returns an error if a member has no profile, fewer than two members
    /// are present, or members disagree on word-line counts.
    pub fn of_superblock(pool: &BlockPool, sb: &Superblock) -> Result<ExtraLatency> {
        let mut profiles = Vec::with_capacity(sb.members.len());
        for &m in &sb.members {
            profiles.push(pool.profile(m).ok_or(PvError::MissingProfile { addr: m })?);
        }
        let tprog: Vec<&[f64]> = profiles.iter().map(|p| p.tprog_us()).collect();
        let tbers: Vec<f64> = profiles.iter().map(|p| p.tbers_us()).collect();
        Self::of_vectors(&tprog, &tbers)
    }

    /// Computes the metrics from raw member latency vectors.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than two members are present or the vectors
    /// have different lengths.
    pub fn of_vectors(tprog: &[&[f64]], tbers: &[f64]) -> Result<ExtraLatency> {
        if tprog.len() < 2 || tbers.len() < 2 {
            return Err(PvError::TooFewMembers { got: tprog.len().min(tbers.len()) });
        }
        let wl_count = tprog[0].len();
        for v in tprog {
            if v.len() != wl_count {
                return Err(PvError::MismatchedWlCount { expected: wl_count, got: v.len() });
            }
        }
        Ok(ExtraLatency {
            program_us: extra_program_us(tprog),
            erase_us: range(tbers.iter().copied()),
        })
    }
}

/// Extra program latency of a combination: the hot loop shared with the
/// brute-force optimal assembly.
pub(crate) fn extra_program_us(tprog: &[&[f64]]) -> f64 {
    let wl_count = tprog[0].len();
    let mut sum = 0.0;
    for wl in 0..wl_count {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for v in tprog {
            let t = v[wl];
            if t < min {
                min = t;
            }
            if t > max {
                max = t;
            }
        }
        sum += max - min;
    }
    sum
}

fn range(values: impl Iterator<Item = f64>) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for v in values {
        if v < min {
            min = v;
        }
        if v > max {
            max = v;
        }
    }
    max - min
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::BlockProfile;
    use flash_model::{BlockId, ChipId, PlaneId};

    fn addr(c: u16, b: u32) -> BlockAddr {
        BlockAddr::new(ChipId(c), PlaneId(0), BlockId(b))
    }

    #[test]
    fn extra_of_identical_members_is_zero() {
        let t: &[&[f64]] = &[&[10.0, 20.0], &[10.0, 20.0]];
        let e = ExtraLatency::of_vectors(t, &[5.0, 5.0]).unwrap();
        assert_eq!(e.program_us, 0.0);
        assert_eq!(e.erase_us, 0.0);
    }

    #[test]
    fn extra_program_sums_per_wl_ranges() {
        let t: &[&[f64]] = &[&[10.0, 20.0], &[12.0, 26.0], &[9.0, 23.0]];
        // WL0: 12-9=3, WL1: 26-20=6.
        let e = ExtraLatency::of_vectors(t, &[100.0, 103.0, 101.0]).unwrap();
        assert_eq!(e.program_us, 9.0);
        assert_eq!(e.erase_us, 3.0);
    }

    #[test]
    fn too_few_members_is_an_error() {
        let t: &[&[f64]] = &[&[1.0]];
        assert_eq!(
            ExtraLatency::of_vectors(t, &[1.0]).unwrap_err(),
            PvError::TooFewMembers { got: 1 }
        );
    }

    #[test]
    fn mismatched_wl_counts_is_an_error() {
        let t: &[&[f64]] = &[&[1.0, 2.0], &[1.0]];
        assert!(matches!(
            ExtraLatency::of_vectors(t, &[1.0, 2.0]).unwrap_err(),
            PvError::MismatchedWlCount { .. }
        ));
    }

    #[test]
    fn of_superblock_uses_pool_profiles() {
        let mut pool = BlockPool::new(2, 4);
        pool.push(0, BlockProfile::new(addr(0, 0), 0, vec![10.0, 20.0, 10.0, 10.0], 3000.0))
            .unwrap();
        pool.push(1, BlockProfile::new(addr(1, 0), 0, vec![14.0, 21.0, 10.0, 12.0], 3010.0))
            .unwrap();
        let sb = Superblock::new(vec![addr(0, 0), addr(1, 0)]);
        let e = ExtraLatency::of_superblock(&pool, &sb).unwrap();
        assert_eq!(e.program_us, 4.0 + 1.0 + 0.0 + 2.0);
        assert_eq!(e.erase_us, 10.0);
    }

    #[test]
    fn of_superblock_reports_missing_member() {
        let pool = BlockPool::new(1, 4);
        let sb = Superblock::new(vec![addr(0, 0), addr(1, 0)]);
        assert!(matches!(
            ExtraLatency::of_superblock(&pool, &sb).unwrap_err(),
            PvError::MissingProfile { .. }
        ));
    }

    #[test]
    fn display_shows_members_and_class() {
        let sb = Superblock::with_class(vec![addr(0, 1), addr(1, 2)], SpeedClass::Fast);
        let s = sb.to_string();
        assert!(s.contains("CE0/P0/BLK1") && s.contains("FAST"), "{s}");
    }

    #[test]
    fn extra_is_nonnegative_for_any_inputs() {
        let t: &[&[f64]] = &[&[5.0, 1.0], &[1.0, 5.0]];
        let e = ExtraLatency::of_vectors(t, &[7.0, 3.0]).unwrap();
        assert!(e.program_us >= 0.0 && e.erase_us >= 0.0);
    }
}
