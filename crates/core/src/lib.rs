//! # pvcheck
//!
//! The primary contribution of *"Are Superpages Super-fast?"* (HPCA 2024):
//! **process-variation-aware superblock organization** for SSDs.
//!
//! A superblock groups one block per chip/plane pool; multi-plane commands
//! complete at the *slowest* member, so mismatched blocks waste time — the
//! paper's **extra latency**. This crate provides:
//!
//! * [`BlockProfile`] / [`BlockPool`] — per-block characterization data
//!   (per-word-line `tPROG`, per-block `tBERS`);
//! * [`Characterizer`] — collects profiles from a [`flash_model::FlashArray`]
//!   by actually erasing and programming blocks (the paper's §VI methodology);
//! * [`ExtraLatency`] — the §III-A metrics;
//! * [`rank`] / [`EigenSequence`] — LWL / PWL / STR rankings and the 1-bit
//!   STR-median quantization with XOR/popcount distance;
//! * [`assembly`] — all eight organization directions of §IV plus the
//!   practical runtime scheme **QSTR-MED** of §V (gather → assemble →
//!   allocate);
//! * [`gather`] — the open-block latency table that turns observed program
//!   latencies into a block summary (program-latency sum + eigen sequence);
//! * [`overhead`] — combination-check counts and the Equation (2) space
//!   model.
//!
//! # Example: compare random vs. QSTR-MED
//!
//! ```
//! use flash_model::{FlashArray, FlashConfig};
//! use pvcheck::{Characterizer, ExtraLatency};
//! use pvcheck::assembly::{Assembler, RandomAssembly, QstrMed};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = FlashConfig::small_test();
//! let mut array = FlashArray::new(config.clone(), 1);
//! let pool = Characterizer::new(&config).characterize_array(&mut array)?;
//!
//! let random = RandomAssembly::new(7).assemble(&pool);
//! let qstr = QstrMed::with_candidates(4).assemble(&pool);
//!
//! let avg = |sbs: &[pvcheck::Superblock]| -> f64 {
//!     sbs.iter()
//!         .map(|sb| ExtraLatency::of_superblock(&pool, sb).unwrap().program_us)
//!         .sum::<f64>() / sbs.len() as f64
//! };
//! assert!(avg(&qstr) < avg(&random), "QSTR-MED should beat random");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod assembly;
mod characterize;
mod distance;
mod eigen;
mod error;
pub mod gather;
pub mod io;
pub mod overhead;
mod profile;
pub mod rank;
mod sorted_list;
mod superblock;

pub use characterize::Characterizer;
pub use distance::{combination_rank_distance, rank_distance};
pub use eigen::EigenSequence;
pub use error::PvError;
pub use profile::{BlockPool, BlockProfile, BlockSummary};
pub use sorted_list::SortedLatencyList;
pub use superblock::{ExtraLatency, SpeedClass, Superblock};

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, PvError>;
