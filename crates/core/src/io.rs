//! Persistence for characterization data: save a [`BlockPool`] to CSV and
//! load it back, so a (slow, real-hardware-style) characterization pass can
//! be reused across experiment runs — the paper's workflow of collecting
//! once per P/E point and analyzing many times.
//!
//! Format, one row per block:
//!
//! ```text
//! pool,chip,plane,block,pe,tbers_us,tprog0,tprog1,...
//! ```

use crate::profile::{BlockPool, BlockProfile};
use flash_model::{BlockAddr, BlockId, ChipId, PlaneId};
use std::fmt;
use std::io::{BufRead, Write};

/// Errors from pool (de)serialization.
#[derive(Debug)]
pub enum PoolIoError {
    /// A row could not be parsed.
    Malformed {
        /// 1-based row number (excluding the header).
        row: usize,
        /// Problem description.
        reason: String,
    },
    /// The underlying reader/writer failed.
    Io(std::io::Error),
    /// Rows describe an inconsistent pool (see inner error).
    Pool(crate::PvError),
}

impl fmt::Display for PoolIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolIoError::Malformed { row, reason } => write!(f, "pool CSV row {row}: {reason}"),
            PoolIoError::Io(e) => write!(f, "pool CSV I/O failed: {e}"),
            PoolIoError::Pool(e) => write!(f, "pool CSV is inconsistent: {e}"),
        }
    }
}

impl std::error::Error for PoolIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PoolIoError::Io(e) => Some(e),
            PoolIoError::Pool(e) => Some(e),
            PoolIoError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for PoolIoError {
    fn from(e: std::io::Error) -> Self {
        PoolIoError::Io(e)
    }
}

/// Writes a pool as CSV.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_pool<W: Write>(pool: &BlockPool, mut w: W) -> Result<(), PoolIoError> {
    writeln!(w, "# strings={} pools={}", pool.strings(), pool.pool_count())?;
    writeln!(w, "pool,chip,plane,block,pe,tbers_us,tprog_us...")?;
    for p in 0..pool.pool_count() {
        for b in pool.pool(p) {
            let a = b.addr();
            write!(w, "{p},{},{},{},{},{}", a.chip.0, a.plane.0, a.block.0, b.pe(), b.tbers_us())?;
            for t in b.tprog_us() {
                write!(w, ",{t}")?;
            }
            writeln!(w)?;
        }
    }
    Ok(())
}

/// Reads a pool back from CSV produced by [`write_pool`].
///
/// # Errors
///
/// Returns [`PoolIoError`] on malformed rows, I/O failure or inconsistent
/// pool shapes.
pub fn read_pool<R: BufRead>(r: R) -> Result<BlockPool, PoolIoError> {
    let mut strings: u16 = 4;
    let mut pools: usize = 0;
    let mut out: Option<BlockPool> = None;
    let mut row_no = 0usize;
    for line in r.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(meta) = trimmed.strip_prefix('#') {
            for field in meta.split_whitespace() {
                if let Some(v) = field.strip_prefix("strings=") {
                    strings = v.parse().map_err(|e| PoolIoError::Malformed {
                        row: 0,
                        reason: format!("bad strings= header: {e}"),
                    })?;
                }
                if let Some(v) = field.strip_prefix("pools=") {
                    pools = v.parse().map_err(|e| PoolIoError::Malformed {
                        row: 0,
                        reason: format!("bad pools= header: {e}"),
                    })?;
                }
            }
            continue;
        }
        if trimmed.starts_with("pool,") {
            continue; // column header
        }
        row_no += 1;
        let malformed = |reason: String| PoolIoError::Malformed { row: row_no, reason };
        let mut fields = trimmed.split(',');
        let mut next_num = |name: &str| -> Result<f64, PoolIoError> {
            fields
                .next()
                .ok_or_else(|| malformed(format!("missing {name}")))?
                .trim()
                .parse::<f64>()
                .map_err(|e| malformed(format!("bad {name}: {e}")))
        };
        let pool_idx = next_num("pool")? as usize;
        let chip = next_num("chip")? as u16;
        let plane = next_num("plane")? as u16;
        let block = next_num("block")? as u32;
        let pe = next_num("pe")? as u32;
        let tbers = next_num("tbers_us")?;
        let tprog: Result<Vec<f64>, _> = fields
            .map(|f| {
                f.trim().parse::<f64>().map_err(|e| malformed(format!("bad tprog value: {e}")))
            })
            .collect();
        let tprog = tprog?;
        if tprog.is_empty() {
            return Err(malformed("row has no word-line latencies".to_string()));
        }
        let pool = out.get_or_insert_with(|| BlockPool::new(pools.max(pool_idx + 1), strings));
        let addr = BlockAddr::new(ChipId(chip), PlaneId(plane), BlockId(block));
        pool.push(pool_idx, BlockProfile::new(addr, pe, tprog, tbers))
            .map_err(PoolIoError::Pool)?;
    }
    out.ok_or(PoolIoError::Malformed { row: 0, reason: "no rows".to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Characterizer;
    use flash_model::{FlashArray, FlashConfig};

    #[test]
    fn roundtrip_preserves_every_profile() {
        let config = FlashConfig::small_test();
        let array = FlashArray::new(config.clone(), 5);
        let pool = Characterizer::new(&config).snapshot(array.latency_model(), 100);
        let mut buf = Vec::new();
        write_pool(&pool, &mut buf).unwrap();
        let loaded = read_pool(buf.as_slice()).unwrap();
        assert_eq!(loaded.pool_count(), pool.pool_count());
        assert_eq!(loaded.len(), pool.len());
        assert_eq!(loaded.strings(), pool.strings());
        for p in pool.iter() {
            let q = loaded.profile(p.addr()).unwrap();
            assert_eq!(q.tprog_us(), p.tprog_us());
            assert_eq!(q.tbers_us(), p.tbers_us());
            assert_eq!(q.pe(), p.pe());
        }
    }

    #[test]
    fn rejects_empty_input() {
        assert!(read_pool(b"" as &[u8]).is_err());
    }

    #[test]
    fn rejects_rows_without_latencies() {
        let err = read_pool(b"0,0,0,0,0,3000\n" as &[u8]).unwrap_err();
        assert!(err.to_string().contains("no word-line latencies"), "{err}");
    }

    #[test]
    fn rejects_garbage_with_row_number() {
        let data = b"# strings=4 pools=1\n0,0,0,0,0,3000,1.0,2.0,3.0,4.0\nnot,a,row\n" as &[u8];
        let err = read_pool(data).unwrap_err();
        assert!(err.to_string().contains("row 2"), "{err}");
    }

    #[test]
    fn assemblies_work_on_loaded_pools() {
        use crate::assembly::{Assembler, QstrMed};
        let config = FlashConfig::small_test();
        let array = FlashArray::new(config.clone(), 2);
        let pool = Characterizer::new(&config).snapshot(array.latency_model(), 0);
        let mut buf = Vec::new();
        write_pool(&pool, &mut buf).unwrap();
        let loaded = read_pool(buf.as_slice()).unwrap();
        let sbs = QstrMed::new().assemble(&loaded);
        assert_eq!(sbs.len(), loaded.min_pool_len());
    }
}
