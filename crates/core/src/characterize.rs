//! Characterization drivers: collect [`BlockProfile`]s from flash.
//!
//! Two paths are provided:
//!
//! * [`Characterizer::characterize_array`] actually erases and programs
//!   every block through the stateful [`FlashArray`] — the faithful
//!   counterpart of the paper's testbed methodology (§VI-A);
//! * [`Characterizer::snapshot`] queries the latency model directly at a
//!   chosen P/E cycle — byte-identical results, orders of magnitude faster,
//!   used by the P/E sweep experiments (the paper's chamber-accelerated
//!   cycling).

use crate::profile::{BlockPool, BlockProfile};
use crate::Result;
use flash_model::{FlashArray, FlashConfig, Geometry, LatencyModel};

/// Collects per-block latency profiles for a whole array.
///
/// ```
/// use flash_model::{FlashArray, FlashConfig};
/// use pvcheck::Characterizer;
///
/// let config = FlashConfig::small_test();
/// let array = FlashArray::new(config.clone(), 3);
/// let pool = Characterizer::new(&config).snapshot(array.latency_model(), 0);
/// assert_eq!(pool.pool_count(), 4);
/// assert_eq!(pool.wl_count() as u32, config.geometry.lwls_per_block());
/// ```
#[derive(Debug, Clone)]
pub struct Characterizer {
    geometry: Geometry,
}

impl Characterizer {
    /// A characterizer for the given configuration.
    #[must_use]
    pub fn new(config: &FlashConfig) -> Self {
        Characterizer { geometry: config.geometry.clone() }
    }

    /// Pool index of a block: one pool per (chip, plane).
    fn pool_index(geo: &Geometry, addr: flash_model::BlockAddr) -> usize {
        usize::from(addr.chip.0) * usize::from(geo.planes_per_chip()) + usize::from(addr.plane.0)
    }

    /// Number of pools this characterizer produces.
    #[must_use]
    pub fn pool_count(&self) -> usize {
        usize::from(self.geometry.chips()) * usize::from(self.geometry.planes_per_chip())
    }

    /// Erases and fully programs every block, recording `tBERS` and each
    /// word-line's `tPROG`.
    ///
    /// Every block endures exactly one P/E cycle. The page payload is a
    /// characterization pattern (zeros), as on the real testbed.
    ///
    /// Blocks that die mid-characterization (media failure on faulty
    /// arrays) are skipped; use
    /// [`Characterizer::characterize_array_tolerant`] to learn which.
    ///
    /// # Errors
    ///
    /// Propagates any non-media flash operation error.
    pub fn characterize_array(&self, array: &mut FlashArray) -> Result<BlockPool> {
        self.characterize_array_tolerant(array).map(|(pool, _)| pool)
    }

    /// [`Characterizer::characterize_array`], also reporting the blocks
    /// that failed a program or erase during the pass (a real testbed marks
    /// these bad and excludes them from the pools; an FTL should retire
    /// them). On healthy media the dead list is empty and the pool is
    /// identical to before.
    ///
    /// # Errors
    ///
    /// Propagates any non-media flash operation error (media failures are
    /// recorded, not raised).
    pub fn characterize_array_tolerant(
        &self,
        array: &mut FlashArray,
    ) -> Result<(BlockPool, Vec<flash_model::BlockAddr>)> {
        let geo = array.geometry().clone();
        let mut pool = BlockPool::new(self.pool_count(), geo.strings());
        let mut dead = Vec::new();
        let payload = vec![0u64; geo.pages_per_lwl() as usize];
        'blocks: for addr in geo.blocks() {
            let pe = array.pe_cycles(addr)?;
            let tbers = match array.erase_block(addr) {
                Ok(t) => t,
                Err(e) if e.is_media_failure() => {
                    dead.push(addr);
                    continue 'blocks;
                }
                Err(e) => return Err(e.into()),
            };
            let mut tprog = Vec::with_capacity(geo.lwls_per_block() as usize);
            for lwl in geo.lwls() {
                match array.program_wl(addr.wl(lwl), &payload) {
                    Ok(t) => tprog.push(t),
                    Err(e) if e.is_media_failure() => {
                        dead.push(addr);
                        continue 'blocks;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            pool.push(Self::pool_index(&geo, addr), BlockProfile::new(addr, pe, tprog, tbers))?;
        }
        Ok((pool, dead))
    }

    /// Queries the latency model directly at P/E cycle `pe` for every block.
    ///
    /// Identical numbers to cycling a fresh array to `pe` and then calling
    /// [`Characterizer::characterize_array`] (erase is sampled at `pe`, the
    /// programs land at `pe + 1` — the cycle the erase opened).
    ///
    /// The per-block work fans out over all available cores: the latency
    /// model is a pure function of `(seed, address, pe)`, so profiles are
    /// computed in parallel chunks and stitched back in geometry order —
    /// the result is byte-identical to [`Characterizer::snapshot_serial`]
    /// (asserted by `snapshot_parallel_matches_serial`).
    #[must_use]
    pub fn snapshot(&self, model: &LatencyModel, pe: u32) -> BlockPool {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        self.snapshot_with_threads(model, pe, threads)
    }

    /// [`Characterizer::snapshot`] on one thread (the reference path; also
    /// the fallback for single-core hosts).
    #[must_use]
    pub fn snapshot_serial(&self, model: &LatencyModel, pe: u32) -> BlockPool {
        self.snapshot_with_threads(model, pe, 1)
    }

    /// [`Characterizer::snapshot`] with an explicit worker count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn snapshot_with_threads(
        &self,
        model: &LatencyModel,
        pe: u32,
        threads: usize,
    ) -> BlockPool {
        assert!(threads > 0, "need at least one characterization thread");
        let geo = model.geometry();
        let mut pool = BlockPool::new(self.pool_count(), geo.strings());
        let profile_of = |addr: flash_model::BlockAddr| {
            let tbers = model.erase_latency_us(addr, pe);
            let tprog: Vec<f64> =
                geo.lwls().map(|lwl| model.program_latency_us(addr.wl(lwl), pe + 1)).collect();
            BlockProfile::new(addr, pe, tprog, tbers)
        };
        if threads == 1 {
            for addr in geo.blocks() {
                pool.push(Self::pool_index(geo, addr), profile_of(addr))
                    .expect("pool indices derive from the same geometry");
            }
            return pool;
        }
        let addrs: Vec<flash_model::BlockAddr> = geo.blocks().collect();
        let chunk = addrs.len().div_ceil(threads).max(1);
        let chunks: Vec<Vec<BlockProfile>> = std::thread::scope(|scope| {
            let handles: Vec<_> = addrs
                .chunks(chunk)
                .map(|slice| scope.spawn(|| slice.iter().map(|&a| profile_of(a)).collect()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("characterization thread panicked"))
                .collect()
        });
        // Stitch in chunk order: `addrs` is geometry order, so the pushes
        // happen in exactly the serial sequence.
        for profile in chunks.into_iter().flatten() {
            let addr = profile.addr();
            pool.push(Self::pool_index(geo, addr), profile)
                .expect("pool indices derive from the same geometry");
        }
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characterize_covers_every_block() {
        let config = FlashConfig::small_test();
        let mut array = FlashArray::new(config.clone(), 5);
        let pool = Characterizer::new(&config).characterize_array(&mut array).unwrap();
        assert_eq!(pool.pool_count(), 4);
        assert_eq!(pool.len() as u64, config.geometry.total_blocks());
        assert_eq!(pool.wl_count() as u32, config.geometry.lwls_per_block());
        assert_eq!(pool.min_pool_len() as u32, config.geometry.blocks_per_plane());
    }

    #[test]
    fn snapshot_matches_array_characterization() {
        let config = FlashConfig::small_test();
        let mut array = FlashArray::new(config.clone(), 5);
        let chr = Characterizer::new(&config);
        let from_array = chr.characterize_array(&mut array).unwrap();
        let from_model = chr.snapshot(array.latency_model(), 0);
        for p in from_array.iter() {
            let q = from_model.profile(p.addr()).unwrap();
            assert_eq!(p.tprog_us(), q.tprog_us(), "block {}", p.addr());
            assert_eq!(p.tbers_us(), q.tbers_us());
        }
    }

    #[test]
    fn snapshot_at_higher_pe_differs() {
        let config = FlashConfig::small_test();
        let array = FlashArray::new(config.clone(), 5);
        let chr = Characterizer::new(&config);
        let p0 = chr.snapshot(array.latency_model(), 0);
        let p1k = chr.snapshot(array.latency_model(), 1000);
        let a = p0.iter().next().unwrap().addr();
        assert_ne!(p0.profile(a).unwrap().tprog_us(), p1k.profile(a).unwrap().tprog_us());
    }

    #[test]
    fn snapshot_parallel_matches_serial() {
        let config = FlashConfig::builder()
            .chips(2)
            .planes_per_chip(2)
            .blocks_per_plane(13)
            .pwl_layers(6)
            .strings(4)
            .build();
        let array = FlashArray::new(config.clone(), 7);
        let chr = Characterizer::new(&config);
        for pe in [0, 1500] {
            let serial = chr.snapshot_serial(array.latency_model(), pe);
            for threads in [2, 3, 8, 64] {
                let parallel = chr.snapshot_with_threads(array.latency_model(), pe, threads);
                assert_eq!(serial, parallel, "threads={threads} pe={pe}");
            }
            assert_eq!(serial, chr.snapshot(array.latency_model(), pe));
        }
    }

    #[test]
    fn tolerant_characterization_skips_dying_blocks() {
        use flash_model::FaultConfig;
        let config = FlashConfig::small_test();
        // Aggressive rates so the single pass certainly loses blocks.
        let fault =
            FaultConfig { program_fail_prob: 0.01, erase_fail_prob: 0.1, ..FaultConfig::default() };
        let mut array = FlashArray::with_faults(config.clone(), 17, fault);
        let chr = Characterizer::new(&config);
        let (pool, dead) = chr.characterize_array_tolerant(&mut array).unwrap();
        assert!(!dead.is_empty(), "10% erase failures must kill some block");
        assert_eq!(pool.len() as u64 + dead.len() as u64, config.geometry.total_blocks());
        for &addr in &dead {
            assert!(pool.profile(addr).is_none(), "dead block {addr} must not be pooled");
        }
    }

    #[test]
    fn tolerant_pass_on_healthy_media_reports_nothing_dead() {
        let config = FlashConfig::small_test();
        let mut array = FlashArray::new(config.clone(), 5);
        let chr = Characterizer::new(&config);
        let (pool, dead) = chr.characterize_array_tolerant(&mut array).unwrap();
        assert!(dead.is_empty());
        assert_eq!(pool.len() as u64, config.geometry.total_blocks());
    }

    #[test]
    fn profiles_record_pe_cycle() {
        let config = FlashConfig::small_test();
        let chr = Characterizer::new(&config);
        let array = FlashArray::new(config, 5);
        let pool = chr.snapshot(array.latency_model(), 500);
        assert!(pool.iter().all(|p| p.pe() == 500));
    }

    #[test]
    fn multi_plane_geometry_gets_one_pool_per_plane() {
        let config = FlashConfig::builder()
            .chips(2)
            .planes_per_chip(2)
            .blocks_per_plane(4)
            .pwl_layers(4)
            .strings(4)
            .build();
        let chr = Characterizer::new(&config);
        assert_eq!(chr.pool_count(), 4);
        let array = FlashArray::new(config, 1);
        let pool = chr.snapshot(array.latency_model(), 0);
        assert_eq!(pool.pool_count(), 4);
        assert_eq!(pool.min_pool_len(), 4);
    }
}
