//! Equation (1): rank distance between blocks.

/// Number of word-line positions where two rank vectors disagree — the
/// paper's `SIM(i, j, wl)` summed over word-lines.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
#[must_use]
pub fn rank_distance(a: &[u32], b: &[u32]) -> u32 {
    assert_eq!(a.len(), b.len(), "rank vectors must have equal length");
    a.iter().zip(b).filter(|(x, y)| x != y).count() as u32
}

/// Equation (1) over a whole combination: the sum of [`rank_distance`] over
/// every unordered pair of member rank vectors.
#[must_use]
pub fn combination_rank_distance(members: &[&[u32]]) -> u64 {
    let mut total = 0u64;
    for i in 0..members.len() {
        for j in (i + 1)..members.len() {
            total += u64::from(rank_distance(members[i], members[j]));
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_have_zero_distance() {
        assert_eq!(rank_distance(&[1, 2, 3], &[1, 2, 3]), 0);
    }

    #[test]
    fn counts_each_differing_position_once() {
        assert_eq!(rank_distance(&[1, 2, 3, 4], &[1, 9, 3, 9]), 2);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = [3, 1, 4, 1, 5];
        let b = [2, 7, 1, 8, 2];
        assert_eq!(rank_distance(&a, &b), rank_distance(&b, &a));
    }

    #[test]
    fn triangle_inequality_holds() {
        // Hamming-style distances satisfy the triangle inequality.
        let a = [0, 1, 2, 3];
        let b = [0, 9, 2, 9];
        let c = [9, 9, 9, 9];
        assert!(rank_distance(&a, &c) <= rank_distance(&a, &b) + rank_distance(&b, &c));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = rank_distance(&[1], &[1, 2]);
    }

    #[test]
    fn combination_distance_sums_pairs() {
        let a: &[u32] = &[0, 0];
        let b: &[u32] = &[0, 1];
        let c: &[u32] = &[1, 1];
        // ab=1, ac=2, bc=1.
        assert_eq!(combination_rank_distance(&[a, b, c]), 4);
    }

    #[test]
    fn combination_of_one_is_zero() {
        assert_eq!(combination_rank_distance(&[&[1u32, 2][..]]), 0);
        assert_eq!(combination_rank_distance(&[]), 0);
    }
}
