//! Error type for the pvcheck crate.

use flash_model::BlockAddr;
use std::fmt;

/// Errors from characterization, gathering and extra-latency evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PvError {
    /// A superblock member has no profile in the pool.
    MissingProfile {
        /// The unknown block.
        addr: BlockAddr,
    },
    /// A superblock needs at least two members to have extra latency.
    TooFewMembers {
        /// Members found.
        got: usize,
    },
    /// Member profiles disagree on the number of word-lines.
    MismatchedWlCount {
        /// Word-lines of the first member.
        expected: usize,
        /// Word-lines of the offending member.
        got: usize,
    },
    /// A gather record arrived out of word-line order.
    GatherOutOfOrder {
        /// Next word-line index the gatherer expects.
        expected: u32,
        /// Word-line index that was recorded.
        got: u32,
    },
    /// The gatherer already saw every word-line of the block.
    GatherComplete,
    /// The gatherer has not yet seen every word-line of the block.
    GatherIncomplete {
        /// Word-lines recorded so far.
        recorded: u32,
        /// Word-lines the block has.
        needed: u32,
    },
    /// An operation on the flash array failed.
    Flash(flash_model::FlashError),
    /// A profile was added to a pool index that does not exist.
    PoolOutOfRange {
        /// Offending pool index.
        pool: usize,
        /// Number of pools.
        pools: usize,
    },
}

impl fmt::Display for PvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PvError::MissingProfile { addr } => write!(f, "no profile for block {addr}"),
            PvError::TooFewMembers { got } => {
                write!(f, "superblock needs at least 2 members, got {got}")
            }
            PvError::MismatchedWlCount { expected, got } => {
                write!(f, "member word-line counts differ: {expected} vs {got}")
            }
            PvError::GatherOutOfOrder { expected, got } => {
                write!(f, "gather expects word-line {expected} next but got {got}")
            }
            PvError::GatherComplete => write!(f, "gatherer already saw the whole block"),
            PvError::GatherIncomplete { recorded, needed } => {
                write!(f, "gatherer saw {recorded} of {needed} word-lines")
            }
            PvError::Flash(e) => write!(f, "flash operation failed: {e}"),
            PvError::PoolOutOfRange { pool, pools } => {
                write!(f, "pool index {pool} out of range for {pools} pools")
            }
        }
    }
}

impl std::error::Error for PvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PvError::Flash(e) => Some(e),
            _ => None,
        }
    }
}

impl From<flash_model::FlashError> for PvError {
    fn from(e: flash_model::FlashError) -> Self {
        PvError::Flash(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_numbers() {
        let e = PvError::GatherOutOfOrder { expected: 4, got: 9 };
        let s = e.to_string();
        assert!(s.contains('4') && s.contains('9'));
    }

    #[test]
    fn flash_error_converts() {
        let fe = flash_model::FlashError::EmptyMultiPlane;
        let pe: PvError = fe.clone().into();
        assert_eq!(pe, PvError::Flash(fe));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PvError>();
    }
}
