//! Statistics over characterized pools: the quantitative counterparts of
//! the paper's §III observations (process variation across chips, process
//! similarity within chips and at equal block offsets).
//!
//! ```
//! use flash_model::{FlashArray, FlashConfig};
//! use pvcheck::{analysis, Characterizer};
//!
//! let config = FlashConfig::small_test();
//! let array = FlashArray::new(config.clone(), 1);
//! let pool = Characterizer::new(&config).snapshot(array.latency_model(), 0);
//! let stats = analysis::pool_statistics(&pool);
//! assert!(stats.bers_pgm_correlation > 0.0);
//! let decomp = analysis::variance_decomposition(&pool);
//! let (chips, blocks, within) = decomp.fractions();
//! assert!((chips + blocks + within - 1.0).abs() < 1e-9);
//! ```

use crate::profile::BlockPool;
use crate::rank;

/// Summary statistics of one chip pool.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolSummary {
    /// Mean block program-latency sum, µs.
    pub mean_pgm_sum_us: f64,
    /// Standard deviation of block program-latency sums, µs.
    pub std_pgm_sum_us: f64,
    /// Mean block erase latency, µs.
    pub mean_tbers_us: f64,
    /// Standard deviation of block erase latencies, µs.
    pub std_tbers_us: f64,
}

/// Statistics over a whole characterized pool set.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolStatistics {
    /// Per-pool summaries.
    pub per_pool: Vec<PoolSummary>,
    /// Pearson correlation between a block's erase latency and its program
    /// latency sum (the channel that lets program-sorted assemblies unify
    /// erase latency, Table V).
    pub bers_pgm_correlation: f64,
    /// Mean eigen distance between blocks *at the same index* on different
    /// chips, normalized by word-line count.
    pub same_offset_eigen_distance: f64,
    /// Mean eigen distance between *randomly paired* blocks on different
    /// chips, normalized by word-line count.
    pub random_pair_eigen_distance: f64,
}

impl PoolStatistics {
    /// Whether same-offset blocks are measurably more similar than random
    /// pairs — the premise of sequential assembly (§IV-A-1).
    #[must_use]
    pub fn offset_similarity_holds(&self) -> bool {
        self.same_offset_eigen_distance < self.random_pair_eigen_distance
    }
}

/// Pearson correlation coefficient; 0 for degenerate inputs.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "correlation needs paired samples");
    let n = a.len() as f64;
    if a.len() < 2 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

fn mean_std(values: impl Iterator<Item = f64> + Clone) -> (f64, f64) {
    let n = values.clone().count() as f64;
    if n == 0.0 {
        return (0.0, 0.0);
    }
    let mean = values.clone().sum::<f64>() / n;
    let var = values.map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Computes [`PoolStatistics`] for a characterized pool set.
///
/// # Panics
///
/// Panics if the pool is empty.
#[must_use]
pub fn pool_statistics(pool: &BlockPool) -> PoolStatistics {
    assert!(!pool.is_empty(), "cannot analyze an empty pool");
    let per_pool = (0..pool.pool_count())
        .map(|p| {
            let blocks = pool.pool(p);
            let (mean_pgm, std_pgm) = mean_std(blocks.iter().map(|b| b.pgm_sum_us()));
            let (mean_ers, std_ers) = mean_std(blocks.iter().map(|b| b.tbers_us()));
            PoolSummary {
                mean_pgm_sum_us: mean_pgm,
                std_pgm_sum_us: std_pgm,
                mean_tbers_us: mean_ers,
                std_tbers_us: std_ers,
            }
        })
        .collect();

    let pgm: Vec<f64> = pool.iter().map(|b| b.pgm_sum_us()).collect();
    let ers: Vec<f64> = pool.iter().map(|b| b.tbers_us()).collect();
    let bers_pgm_correlation = pearson(&pgm, &ers);

    // Eigen similarity: same-offset pairs vs index-shifted pairs between
    // pool 0 and each other pool.
    let strings = pool.strings();
    let wl = pool.wl_count().max(1) as f64;
    let eigens: Vec<Vec<crate::EigenSequence>> = (0..pool.pool_count())
        .map(|p| {
            pool.pool(p).iter().map(|b| rank::str_median_eigen(b.tprog_us(), strings)).collect()
        })
        .collect();
    let mut same = (0.0, 0u64);
    let mut random = (0.0, 0u64);
    let base = &eigens[0];
    for other in eigens.iter().skip(1) {
        let n = base.len().min(other.len());
        for i in 0..n {
            same.0 += f64::from(base[i].distance(&other[i])) / wl;
            same.1 += 1;
            // A deterministic "random" partner: offset by roughly half the
            // pool (breaks any index correlation).
            let j = (i + n / 2 + 1) % n;
            random.0 += f64::from(base[i].distance(&other[j])) / wl;
            random.1 += 1;
        }
    }
    PoolStatistics {
        per_pool,
        bers_pgm_correlation,
        same_offset_eigen_distance: if same.1 > 0 { same.0 / same.1 as f64 } else { 0.0 },
        random_pair_eigen_distance: if random.1 > 0 { random.0 / random.1 as f64 } else { 0.0 },
    }
}

/// Mean program latency per logical word-line across every block of one
/// pool — the aggregated word-line profile of the paper's Figure 5
/// (bottom). Chip-to-chip differences in this curve are the irreducible
/// floor of superblock organization.
///
/// # Panics
///
/// Panics if the pool index is out of range or the pool is empty.
#[must_use]
pub fn layer_profile(pool: &BlockPool, pool_idx: usize) -> Vec<f64> {
    let blocks = pool.pool(pool_idx);
    assert!(!blocks.is_empty(), "pool {pool_idx} is empty");
    let wl = blocks[0].wl_count();
    let mut acc = vec![0.0f64; wl];
    for b in blocks {
        for (a, t) in acc.iter_mut().zip(b.tprog_us()) {
            *a += t;
        }
    }
    for a in &mut acc {
        *a /= blocks.len() as f64;
    }
    acc
}

/// Nested variance decomposition of word-line program latencies: how much
/// of the total spread lives between chips, between blocks within a chip,
/// and within a block — the quantitative version of §III's "process
/// variation across chips, process similarity within".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VarianceDecomposition {
    /// Variance of pool means around the grand mean, µs².
    pub between_pools_us2: f64,
    /// Mean variance of block means around their pool mean, µs².
    pub between_blocks_us2: f64,
    /// Mean variance of word-line latencies around their block mean, µs².
    pub within_blocks_us2: f64,
}

impl VarianceDecomposition {
    /// Total variance (sum of the components), µs².
    #[must_use]
    pub fn total_us2(&self) -> f64 {
        self.between_pools_us2 + self.between_blocks_us2 + self.within_blocks_us2
    }

    /// Fraction of variance attributable to each level:
    /// `(between pools, between blocks, within blocks)`.
    #[must_use]
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total_us2();
        if t == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (self.between_pools_us2 / t, self.between_blocks_us2 / t, self.within_blocks_us2 / t)
    }
}

/// Computes the nested variance decomposition over all profiles.
///
/// # Panics
///
/// Panics if the pool is empty.
#[must_use]
pub fn variance_decomposition(pool: &BlockPool) -> VarianceDecomposition {
    assert!(!pool.is_empty(), "cannot analyze an empty pool");
    let grand_mean = {
        let (sum, n) = pool
            .iter()
            .flat_map(|b| b.tprog_us().iter().copied())
            .fold((0.0, 0u64), |(s, n), v| (s + v, n + 1));
        sum / n as f64
    };
    let mut between_pools = 0.0;
    let mut between_blocks = 0.0;
    let mut within_blocks = 0.0;
    let mut pools_counted = 0u32;
    for p in 0..pool.pool_count() {
        let blocks = pool.pool(p);
        if blocks.is_empty() {
            continue;
        }
        pools_counted += 1;
        let block_means: Vec<f64> =
            blocks.iter().map(|b| b.pgm_sum_us() / b.wl_count() as f64).collect();
        let pool_mean = block_means.iter().sum::<f64>() / block_means.len() as f64;
        between_pools += (pool_mean - grand_mean) * (pool_mean - grand_mean);
        between_blocks +=
            block_means.iter().map(|m| (m - pool_mean) * (m - pool_mean)).sum::<f64>()
                / block_means.len() as f64;
        within_blocks += blocks
            .iter()
            .zip(&block_means)
            .map(|(b, &m)| {
                b.tprog_us().iter().map(|t| (t - m) * (t - m)).sum::<f64>() / b.wl_count() as f64
            })
            .sum::<f64>()
            / blocks.len() as f64;
    }
    let p = f64::from(pools_counted.max(1));
    VarianceDecomposition {
        between_pools_us2: between_pools / p,
        between_blocks_us2: between_blocks / p,
        within_blocks_us2: within_blocks / p,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::BlockProfile;
    use flash_model::{BlockAddr, BlockId, ChipId, FlashArray, FlashConfig, PlaneId};

    #[test]
    fn pearson_of_identical_series_is_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!((pearson(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_inverted_series_is_minus_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [3.0, 2.0, 1.0];
        assert!((pearson(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_is_zero() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn statistics_on_the_calibrated_model() {
        let config = FlashConfig::builder().blocks_per_plane(128).pwl_layers(24).build();
        let array = FlashArray::new(config.clone(), 3);
        let pool = crate::Characterizer::new(&config).snapshot(array.latency_model(), 0);
        let stats = pool_statistics(&pool);
        assert_eq!(stats.per_pool.len(), 4);
        // The model's erase-program correlation channel must be visible.
        assert!(stats.bers_pgm_correlation > 0.3, "corr {}", stats.bers_pgm_correlation);
        // Same-offset blocks share pattern families more often than random
        // pairs — sequential assembly's premise.
        assert!(stats.offset_similarity_holds(), "{stats:?}");
        for p in &stats.per_pool {
            assert!(p.mean_pgm_sum_us > 0.0 && p.std_pgm_sum_us > 0.0);
        }
    }

    #[test]
    fn handles_single_block_pools() {
        let mut pool = BlockPool::new(2, 4);
        for c in 0..2 {
            let addr = BlockAddr::new(ChipId(c), PlaneId(0), BlockId(0));
            pool.push(c as usize, BlockProfile::new(addr, 0, vec![1.0; 8], 10.0)).unwrap();
        }
        let stats = pool_statistics(&pool);
        assert_eq!(stats.per_pool[0].std_pgm_sum_us, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty pool")]
    fn empty_pool_panics() {
        let _ = pool_statistics(&BlockPool::new(0, 4));
    }

    #[test]
    fn layer_profile_averages_blocks() {
        let mut pool = BlockPool::new(1, 4);
        for b in 0..2u32 {
            let addr = BlockAddr::new(ChipId(0), PlaneId(0), BlockId(b));
            let t: Vec<f64> = (0..8).map(|w| f64::from(w + b * 8)).collect();
            pool.push(0, BlockProfile::new(addr, 0, t, 10.0)).unwrap();
        }
        let prof = layer_profile(&pool, 0);
        assert_eq!(prof.len(), 8);
        // Mean of w and w+8 is w+4.
        assert_eq!(prof[0], 4.0);
        assert_eq!(prof[7], 11.0);
    }

    #[test]
    fn layer_profiles_differ_between_chips() {
        let config = FlashConfig::builder().blocks_per_plane(64).pwl_layers(24).build();
        let array = FlashArray::new(config.clone(), 3);
        let pool = crate::Characterizer::new(&config).snapshot(array.latency_model(), 0);
        let a = layer_profile(&pool, 0);
        let b = layer_profile(&pool, 1);
        let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64;
        assert!(diff > 1.0, "chip profiles should differ, mean |Δ| = {diff}");
    }

    #[test]
    fn variance_decomposition_sums_and_normalizes() {
        let config = FlashConfig::builder().blocks_per_plane(64).pwl_layers(24).build();
        let array = FlashArray::new(config.clone(), 7);
        let pool = crate::Characterizer::new(&config).snapshot(array.latency_model(), 0);
        let d = variance_decomposition(&pool);
        assert!(d.total_us2() > 0.0);
        let (a, b, c) = d.fractions();
        assert!((a + b + c - 1.0).abs() < 1e-9);
        // In the calibrated model most per-WL variance is within-block
        // (layer curve + patterns + noise), with real between-block and
        // between-chip components on top.
        assert!(c > a && c > b, "{d:?}");
        assert!(a > 0.0 && b > 0.0);
    }

    #[test]
    fn variance_decomposition_of_identical_blocks_is_flat() {
        let mut pool = BlockPool::new(2, 4);
        for c in 0..2u16 {
            for b in 0..3u32 {
                let addr = BlockAddr::new(ChipId(c), PlaneId(0), BlockId(b));
                pool.push(c as usize, BlockProfile::new(addr, 0, vec![5.0; 8], 10.0)).unwrap();
            }
        }
        let d = variance_decomposition(&pool);
        assert_eq!(d.total_us2(), 0.0);
        assert_eq!(d.fractions(), (0.0, 0.0, 0.0));
    }
}
