//! Computing and space overhead models (§IV-B, §VI-B-2, §VI-D, Equation 2).
//!
//! ```
//! use pvcheck::overhead;
//!
//! // The paper's §VI-B-2 numbers: 1,536 vs 12 checks, a 99.22 % reduction.
//! assert_eq!(overhead::str_med_distance_checks(4, 4), 1536);
//! assert_eq!(overhead::qstr_med_distance_checks(4, 4), 12);
//! // And Equation 2: 52 bytes of metadata per 384-word-line block.
//! assert_eq!(overhead::per_block_metadata_bytes(384), 52);
//! ```

/// Number of member combinations a windowed scheme must enumerate:
/// `window^pools`.
#[must_use]
pub fn windowed_combinations(window: usize, pools: usize) -> u64 {
    (window as u64).pow(pools as u32)
}

/// Pairwise distance checks for a full windowed similarity scheme
/// (STR-RANK / STR-MED): every combination pays one check per unordered
/// pool pair. With four pools and window 4 this is the paper's 1,536.
#[must_use]
pub fn str_med_distance_checks(window: usize, pools: usize) -> u64 {
    let pairs = (pools * pools.saturating_sub(1) / 2) as u64;
    windowed_combinations(window, pools) * pairs
}

/// Distance checks for QSTR-MED: the reference block is compared against
/// `candidates` head blocks in each *other* pool. With four pools and four
/// candidates this is the paper's 12.
#[must_use]
pub fn qstr_med_distance_checks(candidates: usize, pools: usize) -> u64 {
    (pools.saturating_sub(1) * candidates) as u64
}

/// Relative reduction in distance checks of QSTR-MED vs. STR-MED, in
/// percent (the paper's 99.22 %).
#[must_use]
pub fn check_reduction_percent(window: usize, candidates: usize, pools: usize) -> f64 {
    let full = str_med_distance_checks(window, pools) as f64;
    if full == 0.0 {
        return 0.0;
    }
    let q = qstr_med_distance_checks(candidates, pools) as f64;
    (1.0 - q / full) * 100.0
}

/// Per-block metadata bytes QSTR-MED keeps (Equation 2's per-block term):
/// a 4-byte program-latency sum plus one bit per logical word-line.
#[must_use]
pub fn per_block_metadata_bytes(lwls_per_block: u32) -> u64 {
    4 + u64::from(lwls_per_block.div_ceil(8))
}

/// Total memory footprint of QSTR-MED metadata (Equation 2):
/// `blocks × (S_PGM_LTN + S_Eigen)`.
#[must_use]
pub fn memory_footprint_bytes(blocks: u64, lwls_per_block: u32) -> u64 {
    blocks * per_block_metadata_bytes(lwls_per_block)
}

/// Equation 2 applied to a drive: capacity and block size in bytes.
///
/// # Panics
///
/// Panics if `block_bytes` is zero.
#[must_use]
pub fn drive_footprint_bytes(capacity_bytes: u64, block_bytes: u64, lwls_per_block: u32) -> u64 {
    assert!(block_bytes > 0, "block size must be positive");
    memory_footprint_bytes(capacity_bytes / block_bytes, lwls_per_block)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_combination_counts() {
        // §IV-B: window 4, four pools -> 256 combinations, 1,536 checks.
        assert_eq!(windowed_combinations(4, 4), 256);
        assert_eq!(str_med_distance_checks(4, 4), 1536);
        // §IV-A-4: window 8, four pools -> 4,096 combinations.
        assert_eq!(windowed_combinations(8, 4), 4096);
    }

    #[test]
    fn paper_qstr_checks() {
        // §VI-B-2: 12 pair checks at window/candidates 4.
        assert_eq!(qstr_med_distance_checks(4, 4), 12);
    }

    #[test]
    fn paper_reduction_percent() {
        let r = check_reduction_percent(4, 4, 4);
        assert!((r - 99.22).abs() < 0.01, "reduction {r}");
    }

    #[test]
    fn paper_space_overhead() {
        // §VI-D-1: 384 LWLs -> 52 bytes per block.
        assert_eq!(per_block_metadata_bytes(384), 52);
        // 1 TB drive of 8 MB blocks -> ~6.5 MB.
        let bytes = drive_footprint_bytes(1 << 40, 8 << 20, 384);
        let mib = bytes as f64 / (1024.0 * 1024.0);
        assert!((6.0..7.0).contains(&mib), "footprint {mib} MiB");
    }

    #[test]
    fn footprint_scales_linearly_with_blocks() {
        assert_eq!(memory_footprint_bytes(10, 384), 10 * 52);
    }

    #[test]
    fn single_pool_needs_no_checks() {
        assert_eq!(str_med_distance_checks(4, 1), 0);
        assert_eq!(qstr_med_distance_checks(4, 1), 0);
    }
}
