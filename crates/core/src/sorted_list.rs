//! The per-chip sorted program-latency list QSTR-MED maintains (§V-A).

use flash_model::BlockAddr;

/// Blocks of one chip kept sorted by ascending program-latency sum.
///
/// The head holds the fastest free blocks (candidates for fast
/// superblocks), the tail the slowest (candidates for slow superblocks).
#[derive(Debug, Clone, Default)]
pub struct SortedLatencyList {
    entries: Vec<(f64, BlockAddr)>,
}

impl SortedLatencyList {
    /// An empty list.
    #[must_use]
    pub fn new() -> Self {
        SortedLatencyList::default()
    }

    /// Number of blocks in the list.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a block at its sorted position (ties after existing equals).
    pub fn insert(&mut self, pgm_sum_us: f64, addr: BlockAddr) {
        let pos = self.entries.partition_point(|&(s, _)| s <= pgm_sum_us);
        self.entries.insert(pos, (pgm_sum_us, addr));
    }

    /// The `n` fastest blocks, fastest first.
    #[must_use]
    pub fn head(&self, n: usize) -> &[(f64, BlockAddr)] {
        &self.entries[..n.min(self.entries.len())]
    }

    /// The `n` slowest blocks, slowest first — allocation-free, like
    /// [`SortedLatencyList::head`].
    pub fn tail(&self, n: usize) -> impl DoubleEndedIterator<Item = &(f64, BlockAddr)> + '_ {
        self.entries.iter().rev().take(n)
    }

    /// The fastest entry, if any.
    #[must_use]
    pub fn fastest(&self) -> Option<(f64, BlockAddr)> {
        self.entries.first().copied()
    }

    /// The slowest entry, if any.
    #[must_use]
    pub fn slowest(&self) -> Option<(f64, BlockAddr)> {
        self.entries.last().copied()
    }

    /// Removes a block by its latency key and address; returns whether it
    /// was present.
    ///
    /// The key lets the lookup binary-search to the run of equal sums
    /// (`partition_point`) and scan only that run, instead of the former
    /// full O(n) address scan. `pgm_sum_us` must be the exact value the
    /// block was inserted with (callers track it in their summaries).
    pub fn remove(&mut self, pgm_sum_us: f64, addr: BlockAddr) -> bool {
        let start = self.entries.partition_point(|&(s, _)| s < pgm_sum_us);
        for pos in start..self.entries.len() {
            let (s, a) = self.entries[pos];
            if s != pgm_sum_us {
                break;
            }
            if a == addr {
                self.entries.remove(pos);
                return true;
            }
        }
        false
    }

    /// Iterator over `(pgm_sum, addr)` ascending.
    pub fn iter(&self) -> impl Iterator<Item = &(f64, BlockAddr)> {
        self.entries.iter()
    }

    /// The full sorted backing slice, fastest first (for index-based
    /// candidate walks that must not allocate).
    #[must_use]
    pub fn as_slice(&self) -> &[(f64, BlockAddr)] {
        &self.entries
    }

    /// Whether the internal order invariant holds (for tests/debugging).
    #[must_use]
    pub fn is_sorted(&self) -> bool {
        self.entries.windows(2).all(|w| w[0].0 <= w[1].0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_model::{BlockId, ChipId, PlaneId};

    fn addr(b: u32) -> BlockAddr {
        BlockAddr::new(ChipId(0), PlaneId(0), BlockId(b))
    }

    #[test]
    fn insert_keeps_sorted_order() {
        let mut l = SortedLatencyList::new();
        for (s, b) in [(5.0, 1), (1.0, 2), (3.0, 3), (2.0, 4)] {
            l.insert(s, addr(b));
        }
        assert!(l.is_sorted());
        assert_eq!(l.fastest().unwrap().1, addr(2));
        assert_eq!(l.slowest().unwrap().1, addr(1));
    }

    #[test]
    fn head_and_tail_windows() {
        let mut l = SortedLatencyList::new();
        for i in 0..6 {
            l.insert(f64::from(i), addr(i as u32));
        }
        let head: Vec<u32> = l.head(3).iter().map(|&(_, a)| a.block.0).collect();
        assert_eq!(head, vec![0, 1, 2]);
        let tail: Vec<u32> = l.tail(2).map(|&(_, a)| a.block.0).collect();
        assert_eq!(tail, vec![5, 4]);
    }

    #[test]
    fn head_clamps_to_length() {
        let mut l = SortedLatencyList::new();
        l.insert(1.0, addr(0));
        assert_eq!(l.head(10).len(), 1);
        assert_eq!(l.tail(10).count(), 1);
    }

    #[test]
    fn remove_by_key_and_address() {
        let mut l = SortedLatencyList::new();
        l.insert(1.0, addr(0));
        l.insert(2.0, addr(1));
        assert!(l.remove(1.0, addr(0)));
        assert!(!l.remove(1.0, addr(0)));
        assert_eq!(l.len(), 1);
        assert_eq!(l.fastest().unwrap().1, addr(1));
    }

    #[test]
    fn remove_scans_only_the_equal_key_run() {
        let mut l = SortedLatencyList::new();
        // Three blocks share one key; removal must find each by address.
        for b in 0..3 {
            l.insert(5.0, addr(b));
        }
        l.insert(1.0, addr(10));
        l.insert(9.0, addr(11));
        assert!(l.remove(5.0, addr(1)));
        assert!(!l.remove(5.0, addr(1)));
        assert!(l.remove(5.0, addr(0)));
        assert!(l.remove(5.0, addr(2)));
        // A wrong key must not remove an existing address.
        assert!(!l.remove(2.0, addr(10)));
        assert!(l.remove(1.0, addr(10)));
        assert_eq!(l.len(), 1);
        assert!(l.is_sorted());
    }

    #[test]
    fn equal_sums_insert_after_existing() {
        let mut l = SortedLatencyList::new();
        l.insert(1.0, addr(0));
        l.insert(1.0, addr(1));
        let order: Vec<u32> = l.iter().map(|&(_, a)| a.block.0).collect();
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn empty_list_has_no_extremes() {
        let l = SortedLatencyList::new();
        assert!(l.fastest().is_none());
        assert!(l.slowest().is_none());
        assert!(l.is_empty());
    }
}
