//! Ranking strategies over a block's word-line program latencies (§IV-A).
//!
//! All rankings operate on the layer-major latency vector of a block
//! (`lwl = layer * strings + string`) and break ties by index, matching the
//! paper's "sequentially assigns" rule. Each produces a rank vector aligned
//! with the word-line order so two blocks can be compared position by
//! position (Equation 1).

use crate::eigen::EigenSequence;

/// Ranks every logical word-line of the block by program latency
/// (0 = fastest). This is the paper's *LWL-rank* (ranks span `0..lwls`).
#[must_use]
pub fn lwl_ranks(tprog_us: &[f64]) -> Vec<u32> {
    rank_all(tprog_us)
}

/// Ranks each string's physical word-lines independently (*PWL-rank*): the
/// entry at `lwl(layer, string)` is the rank of `layer` among that string's
/// layers (ranks span `0..layers`).
///
/// # Panics
///
/// Panics if `tprog_us.len()` is not a multiple of `strings`.
#[must_use]
pub fn pwl_ranks(tprog_us: &[f64], strings: u16) -> Vec<u32> {
    let s = usize::from(strings);
    assert!(s > 0 && tprog_us.len().is_multiple_of(s), "latency vector not layer-major");
    let layers = tprog_us.len() / s;
    let mut out = vec![0u32; tprog_us.len()];
    for string in 0..s {
        // Latencies of this string across layers, keeping layer ids.
        let mut idx: Vec<usize> = (0..layers).collect();
        idx.sort_by(|&a, &b| {
            tprog_us[a * s + string]
                .partial_cmp(&tprog_us[b * s + string])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        for (rank, &layer) in idx.iter().enumerate() {
            out[layer * s + string] = rank as u32;
        }
    }
    out
}

/// Ranks the strings within each physical word-line layer (*STR-rank*): the
/// entry at `lwl(layer, string)` is the rank of `string` on that layer
/// (ranks span `0..strings`).
///
/// # Panics
///
/// Panics if `tprog_us.len()` is not a multiple of `strings`.
#[must_use]
pub fn str_ranks(tprog_us: &[f64], strings: u16) -> Vec<u32> {
    let s = usize::from(strings);
    assert!(s > 0 && tprog_us.len().is_multiple_of(s), "latency vector not layer-major");
    let layers = tprog_us.len() / s;
    let mut out = vec![0u32; tprog_us.len()];
    let mut idx: Vec<usize> = Vec::with_capacity(s);
    for layer in 0..layers {
        let row = &tprog_us[layer * s..(layer + 1) * s];
        idx.clear();
        idx.extend(0..s);
        idx.sort_by(|&a, &b| {
            row[a].partial_cmp(&row[b]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
        });
        for (rank, &string) in idx.iter().enumerate() {
            out[layer * s + string] = rank as u32;
        }
    }
    out
}

/// The *STR-median* 1-bit quantization (§IV-A-8, §V-B): on each physical
/// word-line layer the fastest half of the strings get bit 0, the rest get
/// bit 1; ties are broken by string index ("sequentially assigns bits zero
/// to the first two word-lines").
///
/// ```
/// use pvcheck::rank::str_median_eigen;
///
/// // One layer, four strings: strings 0 and 2 are fastest.
/// let eigen = str_median_eigen(&[10.0, 30.0, 20.0, 40.0], 4);
/// assert_eq!(eigen.to_string(), "0101");
/// ```
///
/// # Panics
///
/// Panics if `tprog_us.len()` is not a multiple of `strings`.
#[must_use]
pub fn str_median_eigen(tprog_us: &[f64], strings: u16) -> EigenSequence {
    let ranks = str_ranks(tprog_us, strings);
    let fast = u32::from(strings / 2).max(1);
    ranks.iter().map(|&r| r >= fast).collect()
}

/// Ranks an arbitrary latency vector (0 = fastest, ties by index).
fn rank_all(values: &[f64]) -> Vec<u32> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[a].partial_cmp(&values[b]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    let mut out = vec![0u32; values.len()];
    for (rank, &i) in idx.iter().enumerate() {
        out[i] = rank as u32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // 2 layers x 4 strings, layer-major.
    const T: [f64; 8] = [10.0, 30.0, 20.0, 40.0, 5.0, 5.0, 50.0, 5.0];

    #[test]
    fn lwl_ranks_order_everything() {
        let r = lwl_ranks(&T);
        // Sorted order: 5(idx4),5(idx5),5(idx7),10,20,30,40,50.
        assert_eq!(r, vec![3, 5, 4, 6, 0, 1, 7, 2]);
    }

    #[test]
    fn lwl_ranks_are_a_permutation() {
        let r = lwl_ranks(&T);
        let mut sorted = r.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn str_ranks_rank_within_each_layer() {
        let r = str_ranks(&T, 4);
        // Layer 0: 10,30,20,40 -> ranks 0,2,1,3.
        assert_eq!(&r[0..4], &[0, 2, 1, 3]);
        // Layer 1: 5,5,50,5 -> ties by index: 0,1,3,2.
        assert_eq!(&r[4..8], &[0, 1, 3, 2]);
    }

    #[test]
    fn pwl_ranks_rank_within_each_string() {
        let r = pwl_ranks(&T, 4);
        // String 0: layers (10, 5) -> layer1 faster: ranks layer0=1, layer1=0.
        assert_eq!(r[0], 1);
        assert_eq!(r[4], 0);
        // String 2: layers (20, 50) -> layer0=0, layer1=1.
        assert_eq!(r[2], 0);
        assert_eq!(r[6], 1);
    }

    #[test]
    fn str_median_marks_fastest_half_zero() {
        let e = str_median_eigen(&T, 4);
        // Layer 0: fast = 10,20 (strings 0,2) -> bits 0,1,0,1.
        // Layer 1: ties 5,5,50,5 -> first two fast (strings 0,1) -> 0,0,1,1.
        assert_eq!(e.to_string(), "0101 0011");
    }

    #[test]
    fn str_median_handles_two_strings() {
        let t = [1.0, 2.0, 4.0, 3.0]; // 2 layers x 2 strings
        let e = str_median_eigen(&t, 2);
        assert_eq!(e.to_string(), "0110");
    }

    #[test]
    fn identical_latencies_tie_break_by_index() {
        let t = [7.0; 8];
        let r = str_ranks(&t, 4);
        assert_eq!(&r[0..4], &[0, 1, 2, 3]);
        let e = str_median_eigen(&t, 4);
        assert_eq!(e.to_string(), "0011 0011");
    }

    #[test]
    #[should_panic(expected = "layer-major")]
    fn str_ranks_reject_ragged_input() {
        let _ = str_ranks(&[1.0, 2.0, 3.0], 4);
    }

    /// The paper's Figure 9 worked example (BLK-733): four strings per
    /// layer, eigen bits per layer must match the figure exactly, including
    /// tie-breaking ("sequentially assigns bits zero to the first two").
    #[test]
    fn figure9_worked_example_matches_paper() {
        // PWL 0: 1917.0, 1898.6, 1898.6, 1898.6 -> figure says 1 0 0 1.
        assert_eq!(str_median_eigen(&[1917.0, 1898.6, 1898.6, 1898.6], 4).to_string(), "1001");
        // PWL 1: all 1898.6 -> figure says 0 0 1 1.
        assert_eq!(str_median_eigen(&[1898.6; 4], 4).to_string(), "0011");
        // PWL 94: 1579.1, 1646.6, 1579.1, 1579.1 -> figure says 0 1 0 1.
        assert_eq!(str_median_eigen(&[1579.1, 1646.6, 1579.1, 1579.1], 4).to_string(), "0101");
        // PWL 95: 1898.6, 1910.8, 1880.1, 1910.8 -> figure says 0 1 0 1.
        assert_eq!(str_median_eigen(&[1898.6, 1910.8, 1880.1, 1910.8], 4).to_string(), "0101");
    }

    #[test]
    fn rank_vectors_align_with_input_length() {
        assert_eq!(lwl_ranks(&T).len(), 8);
        assert_eq!(pwl_ranks(&T, 4).len(), 8);
        assert_eq!(str_ranks(&T, 4).len(), 8);
        assert_eq!(str_median_eigen(&T, 4).len(), 8);
    }
}
