//! Property-based tests for ranks, eigen sequences, distances, gathering
//! and assembly invariants.

use flash_model::{BlockAddr, BlockId, ChipId, PlaneId};
use proptest::prelude::*;
use pvcheck::assembly::{
    Assembler, LatencySortAssembly, OptimalAssembly, QstrMed, RandomAssembly, RankAssembly,
    RankStrategy, SequentialAssembly, SortKey, SpeedClass,
};
use pvcheck::gather::BlockGatherer;
use pvcheck::{
    combination_rank_distance, rank, rank_distance, BlockPool, BlockProfile, EigenSequence,
    ExtraLatency, Superblock,
};

const STRINGS: u16 = 4;

/// Latency vectors are layer-major with `layers * 4` entries.
fn arb_latencies(layers: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1500.0f64..2000.0, layers * STRINGS as usize)
}

fn arb_pool() -> impl Strategy<Value = BlockPool> {
    (2usize..5, 2usize..8, 1usize..5).prop_flat_map(|(pools, blocks, layers)| {
        proptest::collection::vec(arb_latencies(layers), pools * blocks).prop_map(
            move |latencies| {
                let mut pool = BlockPool::new(pools, STRINGS);
                for (i, t) in latencies.into_iter().enumerate() {
                    let p = i % pools;
                    let b = (i / pools) as u32;
                    let addr = BlockAddr::new(ChipId(p as u16), PlaneId(0), BlockId(b));
                    let tbers = 3000.0 + t[0];
                    pool.push(p, BlockProfile::new(addr, 0, t, tbers)).unwrap();
                }
                pool
            },
        )
    })
}

fn check_validity(pool: &BlockPool, sbs: &[Superblock]) -> Result<(), TestCaseError> {
    prop_assert_eq!(sbs.len(), pool.min_pool_len());
    let mut seen = std::collections::HashSet::new();
    for sb in sbs {
        prop_assert_eq!(sb.members.len(), pool.pool_count());
        let mut pools_used = std::collections::HashSet::new();
        for &m in &sb.members {
            prop_assert!(seen.insert(m), "member reused");
            let p = pool.pool_of(m).expect("member known");
            prop_assert!(pools_used.insert(p), "pool used twice");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lwl_ranks_are_permutations(t in arb_latencies(4)) {
        let r = rank::lwl_ranks(&t);
        let mut sorted = r.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..t.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn str_ranks_are_per_layer_permutations(t in arb_latencies(4)) {
        let r = rank::str_ranks(&t, STRINGS);
        for layer in r.chunks(STRINGS as usize) {
            let mut sorted = layer.to_vec();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..u32::from(STRINGS)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pwl_ranks_are_per_string_permutations(t in arb_latencies(4)) {
        let layers = t.len() / STRINGS as usize;
        let r = rank::pwl_ranks(&t, STRINGS);
        for s in 0..STRINGS as usize {
            let mut got: Vec<u32> = (0..layers).map(|l| r[l * STRINGS as usize + s]).collect();
            got.sort_unstable();
            prop_assert_eq!(got, (0..layers as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn str_median_marks_half_per_layer(t in arb_latencies(4)) {
        let e = rank::str_median_eigen(&t, STRINGS);
        for layer in 0..t.len() / STRINGS as usize {
            let ones: u32 = (0..STRINGS as usize)
                .filter(|&s| e.get(layer * STRINGS as usize + s))
                .count() as u32;
            prop_assert_eq!(ones, u32::from(STRINGS) / 2);
        }
    }

    #[test]
    fn eigen_distance_is_a_metric(a in proptest::collection::vec(any::<bool>(), 1..200),
                                  b in proptest::collection::vec(any::<bool>(), 1..200),
                                  c in proptest::collection::vec(any::<bool>(), 1..200)) {
        let n = a.len().min(b.len()).min(c.len());
        let ea = EigenSequence::from_bits(a[..n].iter().copied());
        let eb = EigenSequence::from_bits(b[..n].iter().copied());
        let ec = EigenSequence::from_bits(c[..n].iter().copied());
        prop_assert_eq!(ea.distance(&ea), 0);
        prop_assert_eq!(ea.distance(&eb), eb.distance(&ea));
        prop_assert!(ea.distance(&ec) <= ea.distance(&eb) + eb.distance(&ec));
        if ea.distance(&eb) == 0 {
            prop_assert_eq!(&ea, &eb);
        }
    }

    #[test]
    fn rank_distance_bounds(a in proptest::collection::vec(0u32..10, 1..100),
                            b in proptest::collection::vec(0u32..10, 1..100)) {
        let n = a.len().min(b.len());
        let d = rank_distance(&a[..n], &b[..n]);
        prop_assert!(d as usize <= n);
        prop_assert_eq!(d, rank_distance(&b[..n], &a[..n]));
    }

    #[test]
    fn combination_distance_is_sum_of_pairs(vs in proptest::collection::vec(proptest::collection::vec(0u32..4, 8), 2..5)) {
        let refs: Vec<&[u32]> = vs.iter().map(|v| v.as_slice()).collect();
        let total = combination_rank_distance(&refs);
        let mut manual = 0u64;
        for i in 0..refs.len() {
            for j in (i + 1)..refs.len() {
                manual += u64::from(rank_distance(refs[i], refs[j]));
            }
        }
        prop_assert_eq!(total, manual);
    }

    #[test]
    fn gatherer_matches_offline_summary(t in arb_latencies(6)) {
        let addr = BlockAddr::new(ChipId(0), PlaneId(0), BlockId(0));
        let layers = (t.len() / STRINGS as usize) as u16;
        let mut g = BlockGatherer::new(addr, STRINGS, layers);
        for (i, &lat) in t.iter().enumerate() {
            g.record(i as u32, lat).unwrap();
        }
        let s = g.finish().unwrap();
        prop_assert_eq!(s.eigen, rank::str_median_eigen(&t, STRINGS));
        prop_assert!((s.pgm_sum_us - t.iter().sum::<f64>()).abs() < 1e-6);
    }

    #[test]
    fn extra_latency_is_permutation_invariant(t in proptest::collection::vec(arb_latencies(3), 3)) {
        let refs: Vec<&[f64]> = t.iter().map(|v| v.as_slice()).collect();
        let tbers = [3000.0, 3010.0, 3020.0];
        let e1 = ExtraLatency::of_vectors(&refs, &tbers).unwrap();
        let rev: Vec<&[f64]> = refs.iter().rev().copied().collect();
        let tb_rev: Vec<f64> = tbers.iter().rev().copied().collect();
        let e2 = ExtraLatency::of_vectors(&rev, &tb_rev).unwrap();
        prop_assert!((e1.program_us - e2.program_us).abs() < 1e-9);
        prop_assert!((e1.erase_us - e2.erase_us).abs() < 1e-9);
        prop_assert!(e1.program_us >= 0.0 && e1.erase_us >= 0.0);
    }

    #[test]
    fn every_assembler_emits_valid_superblocks(pool in arb_pool(), seed in any::<u64>()) {
        let assemblers: Vec<Box<dyn Assembler>> = vec![
            Box::new(RandomAssembly::new(seed)),
            Box::new(SequentialAssembly::new()),
            Box::new(LatencySortAssembly::new(SortKey::Erase)),
            Box::new(LatencySortAssembly::new(SortKey::Program)),
            Box::new(OptimalAssembly::new(3)),
            Box::new(RankAssembly::new(RankStrategy::Lwl, 2)),
            Box::new(RankAssembly::new(RankStrategy::Str, 3)),
            Box::new(RankAssembly::new(RankStrategy::StrMedian, 3)),
            Box::new(QstrMed::with_candidates(2)),
        ];
        for mut a in assemblers {
            let sbs = a.assemble(&pool);
            check_validity(&pool, &sbs)?;
        }
    }

    #[test]
    fn qstr_on_demand_drains_exactly_min_pool(pool in arb_pool()) {
        let mut q = QstrMed::with_candidates(3);
        let strings = pool.strings();
        for p in 0..pool.pool_count() {
            for b in pool.pool(p) {
                q.insert(p, b.summary(strings));
            }
        }
        let mut count = 0;
        while q.assemble_on_demand(if count % 2 == 0 { SpeedClass::Fast } else { SpeedClass::Slow }).is_some() {
            count += 1;
        }
        prop_assert_eq!(count, pool.min_pool_len());
    }

    #[test]
    fn demand_classes_include_the_extreme_reference_block(pool in arb_pool()) {
        let mut q = QstrMed::with_candidates(3);
        let strings = pool.strings();
        for p in 0..pool.pool_count() {
            for b in pool.pool(p) {
                q.insert(p, b.summary(strings));
            }
        }
        // The fast request must claim the globally fastest free block.
        let global_fastest = pool
            .iter()
            .min_by(|a, b| a.pgm_sum_us().partial_cmp(&b.pgm_sum_us()).unwrap())
            .unwrap()
            .addr();
        let fast = q.assemble_on_demand(SpeedClass::Fast).unwrap();
        prop_assert!(fast.members.contains(&global_fastest));
        // The slow request must claim the slowest block still free.
        if pool.min_pool_len() >= 2 {
            let remaining_slowest = pool
                .iter()
                .filter(|b| !fast.members.contains(&b.addr()))
                .max_by(|a, b| a.pgm_sum_us().partial_cmp(&b.pgm_sum_us()).unwrap())
                .unwrap()
                .addr();
            let slow = q.assemble_on_demand(SpeedClass::Slow).unwrap();
            prop_assert!(slow.members.contains(&remaining_slowest));
        }
    }
}
